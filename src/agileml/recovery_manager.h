// Multi-level recovery orchestration (§3.3 "Failures", completed with a
// durable bottom tier).
//
// The paper's tiered-reliability story is an escalation ladder:
//
//   depth 1  ActivePS dead            -> promote its BackupPS, re-replicate
//   depth 2  BackupPS dead            -> rebuild the backup from the active
//   depth 3  both tiers lost          -> restore the newest *valid* durable
//                                        checkpoint, skipping corrupted
//                                        epochs, and rebuild clock tables
//
// RecoveryManager owns that ladder. It classifies a confirmed-dead set
// against the current role assignment, runs the shallowest recovery
// that suffices, and reports what it did (depth, lost clocks, durable
// epoch used, corrupted epochs skipped) so drivers and the chaos
// harness can assert on it. It also owns the checkpoint cadence: at
// every clock boundary it refreshes the in-memory reliable-tier
// checkpoint and mirrors it to the CheckpointStore, and periodically
// scrubs the store so storage-level corruption is found before the
// epoch is needed.
//
// Depths are cumulative in damage, not in work: a depth-3 event is
// handled in one shot (membership cleanup + durable restore), not by
// running depths 1 and 2 first.
#ifndef SRC_AGILEML_RECOVERY_MANAGER_H_
#define SRC_AGILEML_RECOVERY_MANAGER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/agileml/runtime.h"
#include "src/common/types.h"
#include "src/obs/ledger.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ps/checkpoint_store.h"

namespace proteus {

enum class RecoveryDepth : int {
  kNone = 0,             // Only workers died: no solution state involved.
  kBackupPromotion = 1,  // ActivePS lost; backup promoted, work since last sync redone.
  kActiveRebuild = 2,    // Backup lost; re-replicated from the active copy, no lost work.
  kDurableRestore = 3,   // Both tiers lost; newest valid durable epoch restored.
};

const char* RecoveryDepthName(RecoveryDepth depth);

struct RecoveryManagerConfig {
  // Refresh the reliable-tier checkpoint (and mirror it to the durable
  // store) every this many clock boundaries. <= 0 disables the cadence
  // (ForceCheckpoint still works).
  int checkpoint_every = 5;
  // Scrub the durable store every this many boundaries (0 = never).
  int scrub_every = 0;
};

struct RecoveryOutcome {
  RecoveryDepth depth = RecoveryDepth::kNone;
  int lost_clocks = 0;
  Clock restored_clock = 0;         // runtime->clock() after recovery.
  std::uint64_t durable_epoch = 0;  // Epoch restored at depth 3 (0 = in-memory fallback).
  int corrupt_epochs_skipped = 0;   // Committed epochs rejected on the way down.
  int torn_epochs_skipped = 0;
  bool used_durable = false;
};

class RecoveryManager {
 public:
  // `store` may be null: the ladder then bottoms out at the in-memory
  // checkpoint, as before this subsystem existed. Neither pointer is
  // owned; `runtime` must outlive the manager.
  RecoveryManager(AgileMLRuntime* runtime, CheckpointStore* store,
                  RecoveryManagerConfig config = {});

  void SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // Attaches the causal event ledger. Recover() becomes a
  // "recovery.step" causal region — the rollbacks, checkpoints, and
  // restores the runtime performs on its behalf are recorded as its
  // children. Checkpoint cadence and scrubs record leaf events.
  void SetLedger(obs::EventLedger* ledger);

  // Call once per clock boundary (before RunClock). Handles the
  // checkpoint cadence and periodic scrubbing.
  void OnClockBoundary();

  // Snapshot + mirror right now, regardless of cadence.
  void ForceCheckpoint();

  // Classifies `failed` against runtime->roles(), executes the
  // shallowest sufficient recovery level, and re-arms the ladder (a
  // depth-3 recovery immediately re-checkpoints, so a second correlated
  // loss is survivable).
  RecoveryOutcome Recover(const std::vector<NodeId>& failed);

  // Classification only — which depth Recover() would run.
  RecoveryDepth Classify(const std::vector<NodeId>& failed) const;

  // Per-depth event counts (indexed by RecoveryDepth).
  const std::array<int, 4>& depth_counts() const { return depth_counts_; }
  std::uint64_t checkpoints_written() const { return checkpoints_written_; }
  std::uint64_t durable_commits() const { return durable_commits_; }
  std::uint64_t scrub_corruptions_found() const { return scrub_corruptions_found_; }
  std::uint64_t scrubs_run() const { return scrubs_run_; }
  const RecoveryManagerConfig& config() const { return config_; }
  CheckpointStore* store() { return store_; }

 private:
  AgileMLRuntime* runtime_;
  CheckpointStore* store_;
  RecoveryManagerConfig config_;

  std::int64_t boundaries_ = 0;
  Clock last_checkpoint_clock_ = -1;
  std::array<int, 4> depth_counts_{};
  std::uint64_t checkpoints_written_ = 0;
  std::uint64_t durable_commits_ = 0;
  std::uint64_t scrubs_run_ = 0;
  std::uint64_t scrub_corruptions_found_ = 0;

  obs::Tracer* tracer_ = nullptr;
  obs::EventLedger* ledger_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* depth_counters_[4] = {nullptr, nullptr, nullptr, nullptr};
  obs::Counter* durable_restores_counter_ = nullptr;
  obs::Counter* corrupt_epochs_counter_ = nullptr;
  obs::Gauge* last_depth_gauge_ = nullptr;
};

}  // namespace proteus

#endif  // SRC_AGILEML_RECOVERY_MANAGER_H_
