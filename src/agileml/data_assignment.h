// Input-data ownership tracking with previous-owner preloading (Fig. 5).
//
// The input set [0, num_items) is divided into fixed-size blocks. Each
// block has exactly one *owner* (the worker node currently processing it)
// and a *loaded set* (nodes holding a copy in memory). When new nodes
// join, blocks move to them and the previous owner keeps its copy; when a
// node is evicted, its blocks return to a surviving node that already has
// them loaded — "the previous owner of the worker's input data takes
// ownership ... there will be no need to stop and load the input data
// from storage" (§3.3).
#ifndef SRC_AGILEML_DATA_ASSIGNMENT_H_
#define SRC_AGILEML_DATA_ASSIGNMENT_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/common/types.h"

namespace proteus {

struct ItemRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t size() const { return end - begin; }
};

// One block movement produced by a rebalance. `needs_load` is true when
// the destination did not have the block in memory and must fetch it from
// storage (S3) before taking over.
struct BlockMove {
  int block = 0;
  NodeId from = kInvalidNode;  // kInvalidNode for initial assignment.
  NodeId to = kInvalidNode;
  bool needs_load = false;
};

class DataAssignment {
 public:
  DataAssignment(std::int64_t num_items, int num_blocks);

  std::int64_t num_items() const { return num_items_; }
  int num_blocks() const { return num_blocks_; }
  ItemRange BlockRange(int block) const;
  std::int64_t BlockBytes(int block, double bytes_per_item) const;

  // Rebalances ownership across exactly the given worker set (±1 block
  // per node). Nodes keep blocks they already own where possible, and
  // incoming nodes are given blocks they have loaded if any. Returns the
  // moves performed.
  std::vector<BlockMove> Rebalance(const std::vector<NodeId>& workers);

  // Marks a block as memory-resident on a node (load finished).
  void MarkLoaded(int block, NodeId node);
  bool IsLoaded(int block, NodeId node) const;

  // Drops a node entirely (eviction/failure): its loaded copies vanish.
  // Ownership of its blocks must be reassigned by a following
  // Rebalance(). Returns the blocks it owned.
  std::vector<int> DropNode(NodeId node);

  NodeId OwnerOf(int block) const;
  std::vector<int> BlocksOf(NodeId node) const;
  std::vector<ItemRange> RangesOf(NodeId node) const;
  std::int64_t ItemCountOf(NodeId node) const;

  // Invariant check: every block has exactly one live owner.
  bool OwnershipIsComplete() const;

 private:
  std::int64_t num_items_;
  int num_blocks_;
  std::vector<NodeId> owner_;              // Per block; kInvalidNode if unassigned.
  std::vector<std::set<NodeId>> loaded_;   // Per block.
};

}  // namespace proteus

#endif  // SRC_AGILEML_DATA_ASSIGNMENT_H_
