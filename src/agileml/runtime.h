// AgileMLRuntime: executes real ML training over the tiered parameter
// server, with virtual timing.
//
// The runtime plays the roles of the paper's per-node AgileML processes
// plus the elasticity controller (§3.1-§3.3):
//   - real arithmetic: worker code (the MLApp) reads and updates actual
//     parameter values in the ModelStore, so convergence is measurable;
//   - virtual timing: per-clock compute time is items x cost / (cores x
//     core_speed), and communication time comes from the Fabric's
//     byte accounting (see src/net/fabric.h for the contention model);
//   - elasticity: bulk addition (background data preload, then
//     incorporation), warned eviction (end-of-life partition pushes,
//     partition migration to survivors), and unwarned failure (rollback
//     to the last BackupPS-consistent clock, lost work re-done).
//
// A "clock" is one pass over each worker's assigned input data (the
// paper's flexible clock-of-work; §3.1 footnote 3).
#ifndef SRC_AGILEML_RUNTIME_H_
#define SRC_AGILEML_RUNTIME_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "src/agileml/app.h"
#include "src/agileml/cluster.h"
#include "src/agileml/control_plane.h"
#include "src/agileml/data_assignment.h"
#include "src/agileml/failure_detector.h"
#include "src/agileml/roles.h"
#include "src/agileml/tier_guard.h"
#include "src/common/thread_pool.h"
#include "src/common/types.h"
#include "src/net/fabric.h"
#include "src/obs/ledger.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ps/clock_table.h"
#include "src/ps/model.h"

namespace proteus {

struct AgileMLConfig {
  // Fixed global partition count N (§3.3: set once at start-up; the
  // paper uses half the maximum resource count).
  int num_partitions = 32;
  // SSP staleness bound (clocks).
  int staleness = 1;
  // Virtual core speed: app cost-units per core-second. Calibrated so
  // iteration times land in the paper's seconds range.
  double core_speed = 5e6;
  // NIC bandwidth, bytes/sec. Paper measured ~1 Gbps between instances.
  double nic_bandwidth = 1.25e8;
  // Cluster bisection bandwidth, bytes/sec (0 = unconstrained). Models
  // an oversubscribed core switch: a clock can never finish faster than
  // total wire bytes / bisection, regardless of per-NIC headroom. EC2
  // placement groups behave close to unconstrained, which is the
  // default.
  double bisection_bandwidth = 0.0;
  // Input-data load rate from S3-like storage, bytes/sec per node.
  double storage_bandwidth = 6.25e7;
  // Fixed per-clock synchronization overhead (barrier + control RPCs).
  SimDuration barrier_overhead = 0.05;
  // Fraction of per-node communication that overlaps with compute
  // (write-back caches send updates asynchronously during the clock;
  // §2.1). Per-node time = max(compute, comm) + (1-overlap)*min(...).
  double comm_compute_overlap = 0.85;
  // Active->Backup streaming happens every this many clocks.
  int backup_sync_every = 1;
  // Input data divided into this many blocks for ownership tracking.
  int data_blocks = 256;
  // A clock of work may be a fraction of a full data pass (§3.1
  // footnote 3: "a mini-batch of an iteration"). With k > 1, each clock
  // processes 1/k of every worker's data, rotating so k consecutive
  // clocks cover the full pass.
  int minibatches_per_pass = 1;
  // Wire size of one input item (for load-time modeling).
  double bytes_per_item = 64.0;
  // Parameter-store engine selection (ModelOptions::shards picks the
  // legacy per-partition path or the lock-striped arena fast path; the
  // fast path also switches worker->server push and active->backup sync
  // accounting to coalesced delta batches).
  ModelOptions model;
  RolePlannerConfig planner;
  // Heartbeat/lease failure detection (off by default; when enabled,
  // every ready node renews its lease each clock and silently hung
  // nodes are confirmed dead — and Fail()ed internally — after
  // detector.confirm_after missed clocks).
  FailureDetectorConfig detector;
  // Placement bounds for the ultra-transient (serverless) tier. The
  // zero-PS invariant is audited even when disabled; the fraction and
  // sync-lag bounds apply only when enabled.
  TierGuardConfig tier_guard;
  std::uint64_t seed = 1;
  // Run per-node work on a thread pool (true) or sequentially (for
  // deterministic tests).
  bool parallel_execution = true;
};

struct IterationReport {
  Clock clock = 0;                    // Clock index just completed.
  SimDuration duration = 0.0;         // Virtual wall time of this clock.
  SimDuration max_compute = 0.0;      // Slowest node's compute time.
  SimDuration max_comm = 0.0;         // Slowest node's comm time.
  SimDuration bottleneck_time = 0.0;  // compute+comm of the gating node.
  NodeId bottleneck_node = kInvalidNode;
  // Decomposition of bottleneck_time into the gating node's serialized
  // compute and transport shares (overlap-adjusted; a bisection floor
  // lands on the transport side). critical_compute + critical_transport
  // == bottleneck_time by construction — the event ledger and
  // proteus_analyze build per-clock critical-path attribution from it.
  SimDuration critical_compute = 0.0;
  SimDuration critical_transport = 0.0;
  std::uint64_t total_bytes = 0;      // All wire bytes this clock.
  // Pipeline stall from forced (eviction/failure-handling) transfers;
  // already included in `duration`. The chaos harness attributes this to
  // the fault class that queued the transfers.
  SimDuration stall = 0.0;
  Stage stage = Stage::kStage1;
  int worker_nodes = 0;
  // Nodes the failure detector confirmed dead (and Fail()ed) at the end
  // of this clock — external drivers mirroring membership (the chaos
  // harness) use this to forget them.
  std::vector<NodeId> confirmed_dead;
};

class AgileMLRuntime {
 public:
  // Initial nodes are incorporated immediately (input data is loaded
  // during start-up, before training begins).
  AgileMLRuntime(MLApp* app, AgileMLConfig config, const std::vector<NodeInfo>& initial_nodes);
  ~AgileMLRuntime();

  AgileMLRuntime(const AgileMLRuntime&) = delete;
  AgileMLRuntime& operator=(const AgileMLRuntime&) = delete;

  // Attaches the runtime to an observability sink. Spans and instants
  // land on the "agileml" track of `tracer`, timestamped in this
  // runtime's virtual time; counters/gauges register in `metrics`.
  // Either may be nullptr; call before RunClock for complete traces.
  void SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // Attaches the causal event ledger. Each RunClock opens a "clock"
  // region so everything recorded during it (push/pull accounting,
  // backup syncs, heartbeats, detector verdicts, detector-driven
  // rollbacks) carries the clock as its causal parent; elasticity and
  // failure handling emit their own events. May be nullptr.
  void SetLedger(obs::EventLedger* ledger);
  // Ledger id of the most recent "clock" region — the causal anchor for
  // after-the-clock observers (the ConsistencyAuditor parents its
  // violation events here).
  obs::EventId last_clock_event() const { return last_clock_event_; }

  // Executes one clock of work and advances virtual time.
  IterationReport RunClock();
  // Convenience: n clocks; returns the sum of durations.
  SimDuration RunClocks(int n);

  // --- Elasticity (the paper's elasticity controller interface) ---
  // Bulk addition: nodes join, preload input data in the background, and
  // are incorporated once loaded (zero disruption; §3.3 "Scaling Up").
  void AddNodes(const std::vector<NodeInfo>& nodes);
  // Warned eviction (2-minute warning honored): end-of-life pushes /
  // partition moves to survivors; no lost work. Nodes may be a subset of
  // the transient set or all of it.
  void Evict(const std::vector<NodeId>& node_ids);
  // Unwarned failure: rollback to the last backup-consistent clock.
  // Returns the number of lost clocks that will be re-done.
  int Fail(const std::vector<NodeId>& node_ids);
  // Unwarned failure where *both* tiers lost their copy of the solution
  // state (correlated bulk eviction took the ActivePSs and the
  // BackupPS/checkpoint holders at once). Instead of rolling back to the
  // backup copy, state is restored from the installed checkpoint — the
  // caller (normally the RecoveryManager) must InstallCheckpoint()
  // first. Returns lost clocks.
  int FailWithDurableRestore(const std::vector<NodeId>& node_ids);

  // Gray failure: the node stops participating in the control plane
  // (its heartbeats cease) while its compute keeps running, as with a
  // silently hung or blackholed process. With the detector enabled the
  // node is suspected and, after detector.confirm_after missed clocks,
  // confirmed dead and Fail()ed internally — no external Fail() call.
  // Silencing requires the node be ready; clearing is always allowed.
  void SetNodeSilent(NodeId id, bool silent);
  bool IsSilencedNode(NodeId id) const { return silenced_.count(id) > 0; }

  // Zero-warning revocation (the serverless tier's only failure mode):
  // the node's data plane AND control plane die in the same instant — it
  // stops executing work and stops heartbeating, but remains in the
  // membership until the detector confirms the death and Fail()s it
  // internally. Unlike SetNodeSilent (gray failure: compute keeps
  // running), a revoked node contributes nothing from this moment on,
  // so every clock completed before confirmation is missing its
  // updates; FailInternal therefore treats any revoked victim as a
  // solution-state loss and rolls back to the last backup sync even
  // when the victims held no parameter-server roles ("taint rollback").
  void SetNodeRevoked(NodeId id);
  bool IsRevokedNode(NodeId id) const { return revoked_.count(id) > 0; }
  // Revoked nodes still awaiting detector confirmation. While nonzero,
  // backup syncs are suppressed (they would capture tainted clocks), so
  // lag auditors must widen their bound by the detector confirm window.
  int RevokedCount() const { return static_cast<int>(revoked_.size()); }

  // Runs the TierGuard invariants against the current placement (the
  // ConsistencyAuditor calls this at every clock boundary).
  TierGuardReport AuditTierGuard() const;
  const TierGuard& tier_guard() const { return guard_; }

  // Checkpoint of the reliable tier (§3.3: insures against reliable-node
  // failure; free in stage 3 because reliable nodes run no workers).
  void CheckpointReliable();
  bool HasCheckpoint() const { return checkpoint_.has_value(); }
  // Clock the last reliable-tier checkpoint was taken at (-1 when none).
  Clock checkpoint_clock() const { return checkpoint_ ? checkpoint_->clock : -1; }
  // Restores model state from the last checkpoint; returns lost clocks.
  int RestoreFromCheckpoint();
  // Replaces the held checkpoint with externally recovered state (e.g.
  // shard payloads read back from a durable CheckpointStore). Blob
  // count must match the model's shard count. A restart driver can
  // install into a fresh runtime and RestoreFromCheckpoint() to resume
  // a crashed run.
  void InstallCheckpoint(std::vector<std::vector<std::uint8_t>> shard_blobs, Clock clock);
  // Models losing the in-memory checkpoint with its reliable holders
  // (correlated wipeout): after this only a durable copy can help.
  void DropCheckpoint();

  // --- Introspection ---
  Clock clock() const { return clock_; }
  Stage stage() const { return roles_.stage; }
  SimDuration total_time() const { return total_time_; }
  int lost_clocks_total() const { return lost_clocks_total_; }
  // Last clock at which the backup copy was made consistent with the
  // active state (sync, snapshot, or rollback). Meaningful in stages
  // 2/3; the auditor checks clock() - last_sync_clock() stays bounded.
  Clock last_sync_clock() const { return last_sync_clock_; }
  bool IsReadyNode(NodeId id) const { return IsReady(id); }
  bool IsPreparingNode(NodeId id) const { return preparing_.count(id) > 0; }
  const ClockTable& clock_table() const { return clocks_; }
  const RoleAssignment& roles() const { return roles_; }
  const ModelStore& model() const { return model_; }
  const DataAssignment& data() const { return data_; }
  const Fabric& fabric() const { return fabric_; }
  const std::vector<NodeInfo>& nodes() const { return nodes_; }
  // Controller-to-node notification counts (see control_plane.h).
  const ControlPlaneLog& control_log() const { return control_log_; }
  const FailureDetector& failure_detector() const { return detector_; }
  void ResetControlLog() { control_log_.Reset(); }
  std::vector<NodeInfo> ReadyNodes() const;
  TierCounts ReadyTierCounts() const;
  int PreparingCount() const { return static_cast<int>(preparing_.size()); }
  double ComputeObjective() const;
  const AgileMLConfig& config() const { return config_; }
  // Lifetime totals for the checkpoint machinery (mirrored into
  // ProteusRunSummary and the agileml.checkpoint.* metrics).
  std::uint64_t checkpoint_bytes_written_total() const { return checkpoint_bytes_written_total_; }
  std::uint64_t checkpoint_bytes_restored_total() const { return checkpoint_bytes_restored_total_; }
  int restore_clocks_lost_total() const { return restore_clocks_lost_total_; }
  // Clocks credited back against lost_clocks_total_ by forward restores
  // (a durable epoch newer than the last backup sync). The lost-clock
  // counter may only decrease by exactly this credit.
  int restore_clocks_credited_total() const { return restore_clocks_credited_total_; }

 private:
  struct QueuedTransfer {
    NodeId src = kInvalidNode;  // kInvalidNode => external storage.
    NodeId dst = kInvalidNode;  // kInvalidNode => external storage.
    std::uint64_t bytes = 0;
    TrafficClass cls = TrafficClass::kForeground;
    // Forced (eviction/failure-handling) transfers stall the pipeline:
    // their time is added to the next clock without compute overlap —
    // this is the paper's Fig. 16 eviction "blip".
    bool stall = false;
  };

  struct Checkpoint {
    // One canonical blob per model shard, enabling shard-granular
    // restore (and, in ProteusRuntime, shard-granular durable writes).
    std::vector<std::vector<std::uint8_t>> shard_blobs;
    Clock clock = 0;
  };

  const NodeInfo& Node(NodeId id) const;
  bool IsReady(NodeId id) const { return ready_.count(id) > 0; }

  // Shared body of Fail / FailWithDurableRestore.
  int FailInternal(const std::vector<NodeId>& node_ids, bool durable_restore);

  // Re-plans roles over ready nodes and queues the state transfers the
  // transition requires. `dead` nodes cannot serve as transfer sources.
  // `forced` marks transfers as foreground (eviction/failure handling)
  // rather than background (planned growth).
  void TransitionRoles(const std::set<NodeId>& dead, bool forced);

  // Rebalances input data over current worker nodes; charges loads for
  // moves whose destination lacks the block (forced => foreground).
  void RebalanceData(bool forced);

  // Incorporates nodes that finished preloading.
  void IncorporateReady();

  // Streams dirty state from every serving node to its backup; charges
  // fg or bg traffic. Updates last_sync_clock_.
  void SyncAllToBackups(TrafficClass cls);

  // Returns the stall time (seconds) contributed by forced transfers.
  SimDuration ChargeQueuedTransfers();
  void RebuildClockTable();

  MLApp* app_;
  AgileMLConfig config_;
  ModelStore model_;
  Fabric fabric_;
  DataAssignment data_;
  RolePlanner planner_;
  RoleAssignment roles_;
  ClockTable clocks_;

  std::vector<NodeInfo> nodes_;  // Join order; includes preparing nodes.
  std::set<NodeId> ready_;
  std::map<NodeId, std::uint64_t> preparing_;  // Remaining preload bytes.

  FailureDetector detector_;
  std::set<NodeId> silenced_;  // Ready nodes with heartbeats cut.
  // Ready nodes revoked with zero warning: no work, no heartbeats; still
  // in the membership until the detector confirms them dead.
  std::set<NodeId> revoked_;
  TierGuard guard_;

  ControlPlaneLog control_log_;
  std::vector<QueuedTransfer> queued_;
  std::optional<Checkpoint> checkpoint_;
  // Bytes of the most recent background active->backup stream per
  // partition. The stream is asynchronous, so on an eviction-driven
  // transition the BackupPS must first absorb this in-flight tail (the
  // paper's "network overhead in aggressively bringing up-to-date the
  // BackupPSs", Fig. 16).
  std::map<PartitionId, std::uint64_t> last_sync_bytes_;

  Clock clock_ = 0;
  Clock last_sync_clock_ = 0;
  SimDuration total_time_ = 0.0;
  SimDuration last_duration_ = 1.0;
  int lost_clocks_total_ = 0;
  std::uint64_t checkpoint_bytes_written_total_ = 0;
  std::uint64_t checkpoint_bytes_restored_total_ = 0;
  int restore_clocks_lost_total_ = 0;
  int restore_clocks_credited_total_ = 0;

  // Observability sinks (optional) and cached metric handles. All
  // recording happens on the serial control path, never inside the
  // worker thread pool.
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::EventLedger* ledger_ = nullptr;
  obs::EventId last_clock_event_ = obs::kNoEvent;
  obs::Counter* pull_bytes_counter_ = nullptr;
  obs::Counter* push_bytes_counter_ = nullptr;
  // Bytes saved by coalescing pushes into delta batches (legacy per-row
  // framing minus actual coalesced bytes; only advances when shards > 1).
  obs::Counter* push_coalesced_saved_counter_ = nullptr;
  obs::Counter* backup_sync_bytes_counter_ = nullptr;
  obs::Counter* stage_transition_counter_ = nullptr;
  obs::Counter* rollback_clocks_counter_ = nullptr;
  obs::Counter* stall_seconds_counter_ = nullptr;
  obs::Counter* checkpoint_bytes_written_counter_ = nullptr;
  obs::Counter* checkpoint_bytes_restored_counter_ = nullptr;
  obs::Counter* restore_clocks_lost_counter_ = nullptr;
  obs::Gauge* backup_lag_gauge_ = nullptr;
  obs::Gauge* worker_nodes_gauge_ = nullptr;
  obs::Counter* detector_suspicions_counter_ = nullptr;
  obs::Counter* detector_confirmed_counter_ = nullptr;
  obs::Counter* detector_false_positives_counter_ = nullptr;
  obs::Gauge* detector_latency_gauge_ = nullptr;
  obs::Histogram* clock_duration_hist_ = nullptr;

  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace proteus

#endif  // SRC_AGILEML_RUNTIME_H_
