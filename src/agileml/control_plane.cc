#include "src/agileml/control_plane.h"

#include <sstream>

#include "src/common/logging.h"

namespace proteus {

const char* ControlMessageName(ControlMessage type) {
  switch (type) {
    case ControlMessage::kDataAssignment:
      return "data-assignment";
    case ControlMessage::kPartitionOwnership:
      return "partition-ownership";
    case ControlMessage::kEvictionSignal:
      return "eviction-signal";
    case ControlMessage::kEndOfLifeFlag:
      return "end-of-life-flag";
    case ControlMessage::kReadySignal:
      return "ready-signal";
    case ControlMessage::kStageSwitch:
      return "stage-switch";
    case ControlMessage::kRollbackNotice:
      return "rollback-notice";
    case ControlMessage::kHeartbeat:
      return "heartbeat";
    case ControlMessage::kSuspicionNotice:
      return "suspicion-notice";
    case ControlMessage::kRecoveryNotice:
      return "recovery-notice";
  }
  return "?";
}

void ControlPlaneLog::Record(ControlMessage type, std::int64_t count) {
  PROTEUS_CHECK_GE(count, 0);
  counts_[static_cast<std::size_t>(type)] += count;
}

void ControlPlaneLog::Reset() { counts_.fill(0); }

std::int64_t ControlPlaneLog::Count(ControlMessage type) const {
  return counts_[static_cast<std::size_t>(type)];
}

std::int64_t ControlPlaneLog::Total() const {
  std::int64_t total = 0;
  for (const std::int64_t c : counts_) {
    total += c;
  }
  return total;
}

std::int64_t ControlPlaneLog::NotificationTotal() const {
  return Total() - Count(ControlMessage::kHeartbeat);
}

std::string ControlPlaneLog::Summary() const {
  std::ostringstream out;
  bool first = true;
  for (int i = 0; i < kNumControlMessages; ++i) {
    if (counts_[static_cast<std::size_t>(i)] == 0) {
      continue;
    }
    if (!first) {
      out << ", ";
    }
    out << ControlMessageName(static_cast<ControlMessage>(i)) << "="
        << counts_[static_cast<std::size_t>(i)];
    first = false;
  }
  return first ? "none" : out.str();
}

}  // namespace proteus
