#include "src/agileml/failure_detector.h"

#include <algorithm>

#include "src/common/logging.h"

namespace proteus {

FailureDetector::FailureDetector(FailureDetectorConfig config) : config_(config) {
  if (config_.enabled) {
    PROTEUS_CHECK_GE(config_.suspect_after, 1);
    PROTEUS_CHECK_GT(config_.confirm_after, config_.suspect_after);
  }
}

void FailureDetector::Register(NodeId node, std::int64_t now_clock) {
  Lease& lease = leases_[node];
  lease.last_heartbeat = now_clock;
  lease.suspected = false;
}

void FailureDetector::Unregister(NodeId node) { leases_.erase(node); }

bool FailureDetector::Heartbeat(NodeId node, std::int64_t now_clock) {
  auto it = leases_.find(node);
  if (it == leases_.end()) {
    return false;
  }
  it->second.last_heartbeat = now_clock;
  if (it->second.suspected) {
    it->second.suspected = false;
    ++false_positives_;
    return true;
  }
  return false;
}

FailureDetectorReport FailureDetector::Poll(std::int64_t now_clock) {
  FailureDetectorReport report;
  if (!config_.enabled) {
    return report;
  }
  for (auto it = leases_.begin(); it != leases_.end();) {
    const std::int64_t missed = now_clock - it->second.last_heartbeat;
    if (missed >= config_.confirm_after) {
      report.confirmed_dead.push_back({it->first, missed});
      ++confirmations_;
      it = leases_.erase(it);
      continue;
    }
    if (missed >= config_.suspect_after && !it->second.suspected) {
      it->second.suspected = true;
      report.newly_suspected.push_back(it->first);
      ++suspicions_;
    }
    ++it;
  }
  return report;
}

void FailureDetector::RewindTo(std::int64_t now_clock) {
  for (auto& [node, lease] : leases_) {
    lease.last_heartbeat = std::min(lease.last_heartbeat, now_clock);
  }
}

bool FailureDetector::IsTracked(NodeId node) const { return leases_.count(node) > 0; }

bool FailureDetector::IsSuspected(NodeId node) const {
  auto it = leases_.find(node);
  return it != leases_.end() && it->second.suspected;
}

std::int64_t FailureDetector::LastHeartbeat(NodeId node) const {
  auto it = leases_.find(node);
  PROTEUS_CHECK(it != leases_.end()) << "LastHeartbeat of untracked node " << node;
  return it->second.last_heartbeat;
}

std::vector<NodeId> FailureDetector::Tracked() const {
  std::vector<NodeId> nodes;
  nodes.reserve(leases_.size());
  for (const auto& [node, lease] : leases_) {
    nodes.push_back(node);
  }
  return nodes;
}

std::vector<NodeId> FailureDetector::Suspected() const {
  std::vector<NodeId> nodes;
  for (const auto& [node, lease] : leases_) {
    if (lease.suspected) {
      nodes.push_back(node);
    }
  }
  return nodes;
}

}  // namespace proteus
