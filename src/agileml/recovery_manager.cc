#include "src/agileml/recovery_manager.h"

#include <set>
#include <utility>

#include "src/common/logging.h"

namespace proteus {

const char* RecoveryDepthName(RecoveryDepth depth) {
  switch (depth) {
    case RecoveryDepth::kNone:
      return "none";
    case RecoveryDepth::kBackupPromotion:
      return "backup-promotion";
    case RecoveryDepth::kActiveRebuild:
      return "active-rebuild";
    case RecoveryDepth::kDurableRestore:
      return "durable-restore";
  }
  return "?";
}

RecoveryManager::RecoveryManager(AgileMLRuntime* runtime, CheckpointStore* store,
                                 RecoveryManagerConfig config)
    : runtime_(runtime), store_(store), config_(config) {
  PROTEUS_CHECK(runtime_ != nullptr);
}

void RecoveryManager::SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  if (store_ != nullptr) {
    store_->SetObservability(metrics);
  }
  if (metrics_ == nullptr) {
    for (auto& counter : depth_counters_) counter = nullptr;
    durable_restores_counter_ = nullptr;
    corrupt_epochs_counter_ = nullptr;
    last_depth_gauge_ = nullptr;
    return;
  }
  for (int d = 0; d < 4; ++d) {
    depth_counters_[d] = metrics_->GetCounter(
        "recovery.events", {{"depth", RecoveryDepthName(static_cast<RecoveryDepth>(d))}});
  }
  durable_restores_counter_ = metrics_->GetCounter("recovery.durable_restores");
  corrupt_epochs_counter_ = metrics_->GetCounter("recovery.corrupt_epochs_skipped");
  last_depth_gauge_ = metrics_->GetGauge("recovery.last_depth");
}

void RecoveryManager::SetLedger(obs::EventLedger* ledger) { ledger_ = ledger; }

void RecoveryManager::OnClockBoundary() {
  ++boundaries_;
  if (config_.checkpoint_every > 0 && boundaries_ % config_.checkpoint_every == 0) {
    ForceCheckpoint();
  }
  if (store_ != nullptr && config_.scrub_every > 0 && boundaries_ % config_.scrub_every == 0) {
    const ScrubReport report = store_->Scrub();
    ++scrubs_run_;
    scrub_corruptions_found_ += report.corrupt_objects.size();
    if (ledger_ != nullptr) {
      ledger_->Record("recovery.scrub", "recovery", runtime_->total_time(),
                      {{"corrupt_found",
                        static_cast<std::int64_t>(report.corrupt_objects.size())}});
    }
  }
}

void RecoveryManager::ForceCheckpoint() {
  obs::EventId region = obs::kNoEvent;
  if (ledger_ != nullptr) {
    region = ledger_->Open("recovery.checkpoint", "recovery", runtime_->total_time(),
                           {{"clock", static_cast<std::int64_t>(runtime_->clock())}});
  }
  runtime_->CheckpointReliable();
  last_checkpoint_clock_ = runtime_->clock();
  ++checkpoints_written_;
  std::int64_t durable_committed = 0;
  if (store_ != nullptr) {
    // Mirror the snapshot the runtime just took: serialization is
    // canonical, so the durable bytes are bit-identical to the
    // in-memory checkpoint (and incremental reuse still applies).
    const CheckpointWriteResult result =
        store_->WriteCheckpoint(runtime_->model(), runtime_->clock());
    if (result.committed) {
      ++durable_commits_;
      durable_committed = 1;
    }
  }
  if (ledger_ != nullptr) {
    ledger_->Close(region, 0.0, {{"durable_committed", durable_committed}});
  }
}

RecoveryDepth RecoveryManager::Classify(const std::vector<NodeId>& failed) const {
  const RoleAssignment& roles = runtime_->roles();
  std::set<NodeId> dead;
  for (const NodeId id : failed) {
    // Preparing nodes hold no solution state and never appear in roles.
    if (runtime_->IsReadyNode(id)) {
      dead.insert(id);
    }
  }
  if (dead.empty()) {
    return RecoveryDepth::kNone;
  }
  bool server_lost = false;
  bool backup_lost = false;
  bool pair_lost = false;
  for (const auto& [partition, server] : roles.server) {
    const bool server_dead = dead.count(server) > 0;
    bool backup_dead = false;
    if (roles.UsesBackups()) {
      const auto it = roles.backup.find(partition);
      backup_dead = it != roles.backup.end() && dead.count(it->second) > 0;
    }
    server_lost |= server_dead;
    backup_lost |= backup_dead;
    // In stage 1 there is no backup tier at all, so a dead server
    // already means "every live copy of this partition is gone".
    if (server_dead && (!roles.UsesBackups() || backup_dead)) {
      pair_lost = true;
    }
  }
  // Losing the in-memory checkpoint holders together with the active
  // copy is also a both-tiers event even if the backup map looks
  // intact on paper (the harness drops the checkpoint explicitly).
  if (pair_lost) {
    return RecoveryDepth::kDurableRestore;
  }
  if (server_lost) {
    return RecoveryDepth::kBackupPromotion;
  }
  if (backup_lost) {
    return RecoveryDepth::kActiveRebuild;
  }
  return RecoveryDepth::kNone;
}

RecoveryOutcome RecoveryManager::Recover(const std::vector<NodeId>& failed) {
  RecoveryOutcome outcome;
  outcome.depth = Classify(failed);
  const SimDuration at = runtime_->total_time();
  obs::EventId step_event = obs::kNoEvent;
  if (ledger_ != nullptr) {
    // Everything the ladder does — the runtime's rollback, checkpoint
    // restore, eviction records — lands inside this causal region.
    step_event = ledger_->Open("recovery.step", "recovery", at,
                               {{"failed", static_cast<std::int64_t>(failed.size())}});
  }

  if (outcome.depth == RecoveryDepth::kDurableRestore) {
    // Load *before* Fail(): the failure path refuses to proceed without
    // a checkpoint once both tiers are gone. Corrupt or torn epochs are
    // skipped by the store's validation — never loaded.
    if (store_ != nullptr) {
      if (auto loaded = store_->ReadNewestValid()) {
        outcome.used_durable = true;
        outcome.durable_epoch = loaded->epoch;
        outcome.corrupt_epochs_skipped = loaded->corrupt_epochs_skipped;
        outcome.torn_epochs_skipped = loaded->torn_epochs_skipped;
        runtime_->InstallCheckpoint(std::move(loaded->shard_blobs), loaded->clock);
      }
    }
    // If no durable epoch validates, fall back to the in-memory
    // checkpoint — Fail() CHECKs that one exists.
    outcome.lost_clocks = runtime_->FailWithDurableRestore(failed);
  } else {
    outcome.lost_clocks = runtime_->Fail(failed);
  }
  outcome.restored_clock = runtime_->clock();

  const auto depth_index = static_cast<std::size_t>(outcome.depth);
  ++depth_counts_[depth_index];
  if (metrics_ != nullptr) {
    depth_counters_[depth_index]->Increment();
    last_depth_gauge_->Set(static_cast<double>(outcome.depth));
    if (outcome.used_durable) {
      durable_restores_counter_->Increment();
      corrupt_epochs_counter_->Add(static_cast<std::uint64_t>(outcome.corrupt_epochs_skipped));
    }
  }
  if (tracer_ != nullptr) {
    tracer_->SpanAt(at, 0.0, "recovery.ladder", "agileml",
                    {{"depth", std::string(RecoveryDepthName(outcome.depth))},
                     {"lost_clocks", static_cast<std::int64_t>(outcome.lost_clocks)},
                     {"to_clock", static_cast<std::int64_t>(outcome.restored_clock)},
                     {"durable_epoch", static_cast<std::int64_t>(outcome.durable_epoch)},
                     {"corrupt_epochs_skipped",
                      static_cast<std::int64_t>(outcome.corrupt_epochs_skipped)}});
  }

  if (outcome.depth == RecoveryDepth::kDurableRestore) {
    // Re-arm immediately: until the next cadence tick the freshly
    // restored state is the only copy, and a second correlated loss
    // before then must still find a checkpoint.
    ForceCheckpoint();
  }
  if (ledger_ != nullptr) {
    ledger_->Close(step_event, runtime_->total_time() - at,
                   {{"depth", std::string(RecoveryDepthName(outcome.depth))},
                    {"lost_clocks", static_cast<std::int64_t>(outcome.lost_clocks)},
                    {"restored_clock", static_cast<std::int64_t>(outcome.restored_clock)},
                    {"durable_epoch", static_cast<std::int64_t>(outcome.durable_epoch)},
                    {"used_durable", static_cast<std::int64_t>(outcome.used_durable)},
                    {"corrupt_epochs_skipped",
                     static_cast<std::int64_t>(outcome.corrupt_epochs_skipped)}});
  }
  return outcome;
}

}  // namespace proteus
