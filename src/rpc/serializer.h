// Binary wire format for control-plane messages (§5: Proteus components
// exchange ZMQ messages — application characteristics, allocation
// requests/grants, eviction notices). Little-endian fixed-width scalars,
// length-prefixed strings and arrays; all reads bounds-checked so a
// truncated or corrupt frame fails cleanly instead of overrunning.
#ifndef SRC_RPC_SERIALIZER_H_
#define SRC_RPC_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace proteus {

// Encoded size of an unsigned LEB128 varint (1..10 bytes).
std::size_t VarU64Size(std::uint64_t v);

class WireWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U32(std::uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void I32(std::int32_t v) { AppendRaw(&v, sizeof(v)); }
  void I64(std::int64_t v) { AppendRaw(&v, sizeof(v)); }
  void F64(double v) { AppendRaw(&v, sizeof(v)); }
  // Unsigned LEB128: 7 value bits per byte, high bit = continuation.
  void VarU64(std::uint64_t v);
  void Str(const std::string& s);
  void FloatArray(std::span<const float> values);
  void I32Array(std::span<const std::int32_t> values);
  // Opaque length-prefixed byte blob (embeds pre-encoded payloads, e.g.
  // a coalesced delta batch, without re-framing the contents).
  void Blob(std::span<const std::uint8_t> bytes);
  void RawFloats(std::span<const float> values) {
    AppendRaw(values.data(), values.size() * sizeof(float));
  }

  void Reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  void AppendRaw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  std::vector<std::uint8_t> buf_;
};

// Every accessor returns nullopt on underflow / malformed input; once a
// read fails the reader stays failed.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::optional<std::uint8_t> U8();
  std::optional<std::uint32_t> U32();
  std::optional<std::uint64_t> U64();
  std::optional<std::int32_t> I32();
  std::optional<std::int64_t> I64();
  std::optional<double> F64();
  // Unsigned LEB128; fails on truncation or a value overflowing 64 bits.
  std::optional<std::uint64_t> VarU64();
  std::optional<std::string> Str();
  std::optional<std::vector<float>> FloatArray();
  std::optional<std::vector<std::int32_t>> I32Array();
  std::optional<std::vector<std::uint8_t>> Blob();
  // Appends exactly `n` raw floats to `out`; false (and failed) on underflow.
  bool RawFloats(std::size_t n, std::vector<float>& out);

  bool failed() const { return failed_; }
  bool AtEnd() const { return !failed_ && offset_ == data_.size(); }

  // Collections are length-prefixed; this cap rejects hostile lengths
  // before allocation.
  static constexpr std::uint32_t kMaxElements = 1u << 24;

 private:
  bool Take(void* out, std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
  bool failed_ = false;
};

// --- Coalesced delta batches (the sharded PS hot-path wire format) ---
//
// A delta batch carries every row a worker (or an ActivePS backup
// stream) needs to move in one frame, replacing per-row UpdateParamMsg
// framing. Layout:
//
//   u8      format version (kDeltaBatchVersion)
//   varint  row count
//   per row, keys strictly ascending:
//     varint  key delta (first row: the key; later rows: key - prev key)
//     varint  cols
//     f32[cols] raw little-endian payload
//
// Encoding sorts rows by key and coalesces duplicates by component-wise
// addition (in input order, so the float sum is deterministic). The
// encoder computes the exact output size up front and makes a single
// allocation; DeltaBatchEncodedBytes exposes the same size computation
// so byte accounting can be done without materializing a buffer.

inline constexpr std::uint8_t kDeltaBatchVersion = 1;

// One row of a batch to encode. `key` is an opaque 64-bit row id (the
// PS packs table and row into it); all rows sharing a key must agree on
// values.size().
struct DeltaRow {
  std::uint64_t key = 0;
  std::span<const float> values;
};

// Exact encoded size of a batch whose post-coalescing rows have the
// given strictly-ascending keys and per-row widths.
std::size_t DeltaBatchEncodedBytes(std::span<const std::uint64_t> sorted_keys,
                                   std::span<const std::uint32_t> cols);

// Sorts, coalesces duplicates (summing), and encodes in one allocation.
std::vector<std::uint8_t> EncodeDeltaBatch(std::span<const DeltaRow> rows);

// Decoded batch: rows in ascending key order, float payloads packed into
// one contiguous buffer (row i spans values[offsets[i]..offsets[i+1])).
struct DecodedDeltaBatch {
  std::vector<std::uint64_t> keys;
  std::vector<std::size_t> offsets;  // keys.size() + 1 entries.
  std::vector<float> values;

  std::size_t rows() const { return keys.size(); }
  std::span<const float> row(std::size_t i) const {
    return std::span<const float>(values).subspan(offsets[i], offsets[i + 1] - offsets[i]);
  }
};

// Returns nullopt on truncation, trailing garbage, a bad version byte,
// non-ascending keys, or hostile lengths. Never reads out of bounds.
std::optional<DecodedDeltaBatch> DecodeDeltaBatch(std::span<const std::uint8_t> buf);

}  // namespace proteus

#endif  // SRC_RPC_SERIALIZER_H_
