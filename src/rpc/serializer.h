// Binary wire format for control-plane messages (§5: Proteus components
// exchange ZMQ messages — application characteristics, allocation
// requests/grants, eviction notices). Little-endian fixed-width scalars,
// length-prefixed strings and arrays; all reads bounds-checked so a
// truncated or corrupt frame fails cleanly instead of overrunning.
#ifndef SRC_RPC_SERIALIZER_H_
#define SRC_RPC_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace proteus {

class WireWriter {
 public:
  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U32(std::uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void I32(std::int32_t v) { AppendRaw(&v, sizeof(v)); }
  void I64(std::int64_t v) { AppendRaw(&v, sizeof(v)); }
  void F64(double v) { AppendRaw(&v, sizeof(v)); }
  void Str(const std::string& s);
  void FloatArray(std::span<const float> values);
  void I32Array(std::span<const std::int32_t> values);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  void AppendRaw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  std::vector<std::uint8_t> buf_;
};

// Every accessor returns nullopt on underflow / malformed input; once a
// read fails the reader stays failed.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::optional<std::uint8_t> U8();
  std::optional<std::uint32_t> U32();
  std::optional<std::uint64_t> U64();
  std::optional<std::int32_t> I32();
  std::optional<std::int64_t> I64();
  std::optional<double> F64();
  std::optional<std::string> Str();
  std::optional<std::vector<float>> FloatArray();
  std::optional<std::vector<std::int32_t>> I32Array();

  bool failed() const { return failed_; }
  bool AtEnd() const { return !failed_ && offset_ == data_.size(); }

  // Collections are length-prefixed; this cap rejects hostile lengths
  // before allocation.
  static constexpr std::uint32_t kMaxElements = 1u << 24;

 private:
  bool Take(void* out, std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
  bool failed_ = false;
};

}  // namespace proteus

#endif  // SRC_RPC_SERIALIZER_H_
