#include "src/rpc/reliable.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/logging.h"

namespace proteus {

ReliableChannel::ReliableChannel(Channel* data, Channel* ack, ReliableChannelConfig config)
    : data_(data), ack_(ack), config_(config), rng_(config.seed) {
  PROTEUS_CHECK(data_ != nullptr);
  PROTEUS_CHECK(ack_ != nullptr);
  PROTEUS_CHECK_GE(config_.window, 1);
  PROTEUS_CHECK_GT(config_.initial_rto, 0.0);
  PROTEUS_CHECK_GE(config_.max_rto, config_.initial_rto);
  PROTEUS_CHECK_GE(config_.backoff, 1.0);
  PROTEUS_CHECK(config_.jitter >= 0.0 && config_.jitter < 1.0);
  PROTEUS_CHECK_GE(config_.max_sacks, 0);
}

void ReliableChannel::Send(const Message& message, double now) {
  ++messages_accepted_;
  backlog_.push_back(EncodeMessage(message));
  RefillWindow(now);
}

void ReliableChannel::RefillWindow(double now) {
  while (!backlog_.empty() &&
         in_flight_.size() < static_cast<std::size_t>(config_.window)) {
    const std::uint64_t seq = next_seq_++;
    InFlight entry;
    entry.payload = std::move(backlog_.front());
    backlog_.pop_front();
    entry.attempts = 1;
    entry.first_sent = now;
    entry.next_retx = now + NextTimeout(1);
    if (ledger_ != nullptr) {
      entry.send_event = ledger_->Record(
          "rpc.send.reliable", "rpc", now,
          {{"channel", ledger_name_},
           {"seq", static_cast<std::int64_t>(seq)},
           {"bytes", static_cast<std::int64_t>(entry.payload.size())}});
    }
    SendDataFrame(seq, entry);
    in_flight_.emplace(seq, std::move(entry));
  }
}

double ReliableChannel::NextTimeout(int attempts) {
  double rto = config_.initial_rto * std::pow(config_.backoff, attempts - 1);
  rto = std::min(rto, config_.max_rto);
  // Seeded jitter keeps simultaneous sessions from retransmitting in
  // lockstep while staying replayable: the draw order is a pure
  // function of the (seeded) event sequence.
  return rto * rng_.Uniform(1.0 - config_.jitter, 1.0 + config_.jitter);
}

void ReliableChannel::SendDataFrame(std::uint64_t seq, const InFlight& entry) {
  ReliableFrameMsg frame;
  frame.session = config_.session;
  frame.seq = seq;
  frame.payload = entry.payload;
  data_->Send(frame);
}

void ReliableChannel::SendAckFrame() {
  ReliableFrameMsg frame;
  frame.session = config_.session;
  frame.seq = 0;  // Pure ack.
  frame.cum_ack = received_up_to_;
  for (const auto& [seq, payload] : out_of_order_) {
    if (static_cast<int>(frame.sacks.size()) >= config_.max_sacks) {
      break;
    }
    frame.sacks.push_back(seq);
  }
  ack_->Send(frame);
}

std::optional<Message> ReliableChannel::Receive(double now) {
  while (auto message = data_->Poll()) {
    if (auto* frame = std::get_if<ReliableFrameMsg>(&*message)) {
      if (frame->session == config_.session && frame->seq > 0) {
        AcceptData(std::move(*frame), now);
      }
      // Wrong-session frames and stray acks on the data path are
      // ignored: they belong to nobody.
      continue;
    }
    // Non-reliable traffic passes through untouched.
    deliverable_.push_back(std::move(*message));
  }
  if (deliverable_.empty()) {
    return std::nullopt;
  }
  Message next = std::move(deliverable_.front());
  deliverable_.pop_front();
  ++messages_delivered_;
  return next;
}

void ReliableChannel::AcceptData(ReliableFrameMsg frame, double now) {
  const std::uint64_t seq = frame.seq;
  if (seq <= received_up_to_ || out_of_order_.count(seq) > 0) {
    ++dup_suppressed_;
    if (dup_suppressed_counter_ != nullptr) {
      dup_suppressed_counter_->Increment();
    }
    if (ledger_ != nullptr) {
      ledger_->Record("rpc.dup_suppressed", "rpc", now,
                      {{"channel", ledger_name_},
                       {"seq", static_cast<std::int64_t>(seq)}});
    }
    // Re-ack so the sender learns this frame landed even if the
    // original ack was lost.
    SendAckFrame();
    return;
  }
  out_of_order_.emplace(seq, std::move(frame.payload));
  // Release the in-order prefix.
  while (true) {
    auto it = out_of_order_.find(received_up_to_ + 1);
    if (it == out_of_order_.end()) {
      break;
    }
    auto decoded = DecodeMessage(it->second);
    PROTEUS_CHECK(decoded.has_value()) << "undecodable reliable payload";
    deliverable_.push_back(std::move(*decoded));
    out_of_order_.erase(it);
    ++received_up_to_;
  }
  SendAckFrame();
}

void ReliableChannel::Tick(double now) {
  while (auto message = ack_->Poll()) {
    if (auto* frame = std::get_if<ReliableFrameMsg>(&*message)) {
      if (frame->session == config_.session && frame->seq == 0) {
        HandleAck(*frame, now);
      }
    }
  }
  RefillWindow(now);
  for (auto& [seq, entry] : in_flight_) {
    if (entry.next_retx > now) {
      continue;
    }
    ++entry.attempts;
    ++retransmits_;
    retransmit_log_.push_back({seq, entry.attempts, now});
    if (retransmits_counter_ != nullptr) {
      retransmits_counter_->Increment();
    }
    if (tracer_ != nullptr) {
      tracer_->InstantAt(now, "rpc.retransmit", "rpc",
                         {{"seq", static_cast<std::int64_t>(seq)},
                          {"attempt", static_cast<std::int64_t>(entry.attempts)}});
    }
    if (ledger_ != nullptr) {
      ledger_->RecordWithParent(
          "rpc.retransmit", "rpc", now, entry.send_event,
          {{"channel", ledger_name_},
           {"seq", static_cast<std::int64_t>(seq)},
           {"attempt", static_cast<std::int64_t>(entry.attempts)}});
    }
    entry.next_retx = now + NextTimeout(entry.attempts);
    SendDataFrame(seq, entry);
  }
}

void ReliableChannel::HandleAck(const ReliableFrameMsg& frame, double now) {
  cum_acked_ = std::max(cum_acked_, frame.cum_ack);
  auto ack_one = [&](std::uint64_t seq) {
    auto it = in_flight_.find(seq);
    if (it == in_flight_.end()) {
      return;
    }
    // Karn's rule: only first-attempt acks yield unambiguous RTT
    // samples.
    if (it->second.attempts == 1 && ack_rtt_hist_ != nullptr) {
      ack_rtt_hist_->Observe(now - it->second.first_sent);
    }
    if (tracer_ != nullptr) {
      tracer_->SpanAt(it->second.first_sent, now - it->second.first_sent,
                      "rpc.delivery", "rpc",
                      {{"seq", static_cast<std::int64_t>(seq)},
                       {"attempts", static_cast<std::int64_t>(it->second.attempts)}});
    }
    if (ledger_ != nullptr) {
      ledger_->RecordWithParent(
          "rpc.delivery", "rpc", now, it->second.send_event,
          {{"channel", ledger_name_},
           {"seq", static_cast<std::int64_t>(seq)},
           {"attempts", static_cast<std::int64_t>(it->second.attempts)},
           {"rtt", now - it->second.first_sent}});
    }
    in_flight_.erase(it);
  };
  while (!in_flight_.empty() && in_flight_.begin()->first <= frame.cum_ack) {
    ack_one(in_flight_.begin()->first);
  }
  for (const std::uint64_t seq : frame.sacks) {
    ack_one(seq);
  }
  RefillWindow(now);
}

bool ReliableChannel::Quiescent() const {
  return in_flight_.empty() && backlog_.empty() && deliverable_.empty();
}

void ReliableChannel::SetLedger(obs::EventLedger* ledger, const std::string& name) {
  ledger_ = ledger;
  ledger_name_ = name;
}

void ReliableChannel::SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics,
                                       const std::string& name) {
  tracer_ = tracer;
  retransmits_counter_ = nullptr;
  dup_suppressed_counter_ = nullptr;
  ack_rtt_hist_ = nullptr;
  if (metrics == nullptr) {
    return;
  }
  const obs::Labels labels = {{"channel", name}};
  retransmits_counter_ = metrics->GetCounter("rpc.retransmits", labels);
  dup_suppressed_counter_ = metrics->GetCounter("rpc.dup_delivered_suppressed", labels);
  ack_rtt_hist_ = metrics->GetHistogram(
      "rpc.ack_rtt", {0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0}, labels);
}

}  // namespace proteus
