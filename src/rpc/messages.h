// Typed control-plane messages (§5, Fig. 7): the frames Proteus
// components exchange — AgileML registers its application
// characteristics with BidBrain; BidBrain sends allocation requests to
// the cloud API and forwards grants and eviction notices to the
// elasticity controller; parameter reads/updates flow between worker
// caches and server shards.
//
// Every message encodes to a framed byte buffer (1-byte type tag +
// payload) and decodes with full validation — Decode returns nullopt on
// any malformed frame.
#ifndef SRC_RPC_MESSAGES_H_
#define SRC_RPC_MESSAGES_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/common/types.h"
#include "src/rpc/serializer.h"

namespace proteus {

enum class MessageType : std::uint8_t {
  kAppCharacteristics = 1,
  kAllocationRequest = 2,
  kAllocationGrant = 3,
  kEvictionNotice = 4,
  kReadParam = 5,
  kParamValue = 6,
  kUpdateParam = 7,
  kWorkerReady = 8,
  kShardDelta = 9,
  kReliableFrame = 10,
  kRecoveryNotice = 11,
};

// AgileML -> BidBrain at start-up (§5: "a ZMQ message that specifies
// the application characteristics").
struct AppCharacteristicsMsg {
  double phi = 0.0;
  double sigma = 0.0;
  double lambda = 0.0;
  double work_per_core_hour = 1.0;
};

// BidBrain -> cloud API: (instance type, count, bid price) (§4).
struct AllocationRequestMsg {
  std::string zone;
  std::string instance_type;
  std::int32_t count = 0;
  double bid = 0.0;
};

// Cloud -> BidBrain -> elasticity controller: "the list of IP addresses
// and sizes of the instances in the new allocation" (§5).
struct AllocationGrantMsg {
  AllocationId allocation = kInvalidAllocation;
  std::vector<std::int32_t> node_ids;
  std::int32_t vcpus_per_node = 0;
};

// BidBrain -> elasticity controller on an eviction notification (§5).
struct EvictionNoticeMsg {
  AllocationId allocation = kInvalidAllocation;
  std::vector<std::int32_t> node_ids;
  double warning_seconds = 0.0;
};

// Worker cache -> server shard.
struct ReadParamMsg {
  std::int32_t table = 0;
  std::int64_t row = 0;
};

// Server shard -> worker cache.
struct ParamValueMsg {
  std::int32_t table = 0;
  std::int64_t row = 0;
  std::vector<float> value;
};

// Worker cache -> server shard (write-back coalesced delta).
struct UpdateParamMsg {
  std::int32_t table = 0;
  std::int64_t row = 0;
  std::vector<float> delta;
};

// New node -> elasticity controller: data loaded, ready to work (§3.3).
struct WorkerReadyMsg {
  std::int32_t node_id = kInvalidNode;
  std::int64_t items_loaded = 0;
};

// Coalesced per-shard delta buffer (worker cache -> ActivePS push, or
// ActivePS -> BackupPS background sync). `payload` is a pre-encoded
// delta batch (see EncodeDeltaBatch in serializer.h) embedded as an
// opaque blob, so framing never re-walks the rows.
struct ShardDeltaMsg {
  std::int32_t shard = 0;
  std::int64_t clock = 0;
  std::vector<std::uint8_t> payload;
};

// Reliable-transport envelope (see src/rpc/reliable.h): a sequenced
// data frame or a pure ack, carried over the raw Channel. `seq == 0`
// marks an ack-only frame (data sequence numbers start at 1). `cum_ack`
// acknowledges every sequence number <= it; `sacks` selectively
// acknowledges received-out-of-order frames above the cumulative point,
// so the sender can skip retransmitting them. `payload` embeds the
// encoded inner Message as an opaque blob.
struct ReliableFrameMsg {
  std::uint32_t session = 0;
  std::uint64_t seq = 0;
  std::uint64_t cum_ack = 0;
  std::vector<std::uint64_t> sacks;
  std::vector<std::uint8_t> payload;
};

// Controller broadcast after a multi-level recovery (see
// src/agileml/recovery_manager.h): tells every worker which escalation
// depth ran, the clock training resumed from, and — for durable
// restores — the checkpoint epoch that supplied the state.
struct RecoveryNoticeMsg {
  std::int32_t depth = 0;  // RecoveryDepth as an integer.
  std::int64_t restored_clock = 0;
  std::int32_t lost_clocks = 0;
  std::uint64_t checkpoint_epoch = 0;  // 0 = no durable epoch involved.
};

using Message =
    std::variant<AppCharacteristicsMsg, AllocationRequestMsg, AllocationGrantMsg,
                 EvictionNoticeMsg, ReadParamMsg, ParamValueMsg, UpdateParamMsg,
                 WorkerReadyMsg, ShardDeltaMsg, ReliableFrameMsg, RecoveryNoticeMsg>;

// Frames (type tag + payload) any message.
std::vector<std::uint8_t> EncodeMessage(const Message& message);

// Returns nullopt on unknown tag, truncation, or trailing garbage.
std::optional<Message> DecodeMessage(std::span<const std::uint8_t> frame);

MessageType TypeOf(const Message& message);

// Stable lowercase name for metric labels and trace args, e.g.
// "eviction_notice".
const char* MessageTypeName(MessageType type);

}  // namespace proteus

#endif  // SRC_RPC_MESSAGES_H_
