#include "src/rpc/serializer.h"

namespace proteus {

void WireWriter::Str(const std::string& s) {
  U32(static_cast<std::uint32_t>(s.size()));
  AppendRaw(s.data(), s.size());
}

void WireWriter::FloatArray(std::span<const float> values) {
  U32(static_cast<std::uint32_t>(values.size()));
  AppendRaw(values.data(), values.size() * sizeof(float));
}

void WireWriter::I32Array(std::span<const std::int32_t> values) {
  U32(static_cast<std::uint32_t>(values.size()));
  AppendRaw(values.data(), values.size() * sizeof(std::int32_t));
}

bool WireReader::Take(void* out, std::size_t n) {
  if (failed_ || data_.size() - offset_ < n) {
    failed_ = true;
    return false;
  }
  std::memcpy(out, data_.data() + offset_, n);
  offset_ += n;
  return true;
}

std::optional<std::uint8_t> WireReader::U8() {
  std::uint8_t v = 0;
  if (!Take(&v, sizeof(v))) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::uint32_t> WireReader::U32() {
  std::uint32_t v = 0;
  if (!Take(&v, sizeof(v))) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::uint64_t> WireReader::U64() {
  std::uint64_t v = 0;
  if (!Take(&v, sizeof(v))) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::int32_t> WireReader::I32() {
  std::int32_t v = 0;
  if (!Take(&v, sizeof(v))) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::int64_t> WireReader::I64() {
  std::int64_t v = 0;
  if (!Take(&v, sizeof(v))) {
    return std::nullopt;
  }
  return v;
}

std::optional<double> WireReader::F64() {
  double v = 0;
  if (!Take(&v, sizeof(v))) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::string> WireReader::Str() {
  const auto len = U32();
  if (!len.has_value() || *len > kMaxElements) {
    failed_ = true;
    return std::nullopt;
  }
  std::string s(*len, '\0');
  if (!Take(s.data(), *len)) {
    return std::nullopt;
  }
  return s;
}

std::optional<std::vector<float>> WireReader::FloatArray() {
  const auto len = U32();
  if (!len.has_value() || *len > kMaxElements) {
    failed_ = true;
    return std::nullopt;
  }
  std::vector<float> v(*len);
  if (!Take(v.data(), static_cast<std::size_t>(*len) * sizeof(float))) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::vector<std::int32_t>> WireReader::I32Array() {
  const auto len = U32();
  if (!len.has_value() || *len > kMaxElements) {
    failed_ = true;
    return std::nullopt;
  }
  std::vector<std::int32_t> v(*len);
  if (!Take(v.data(), static_cast<std::size_t>(*len) * sizeof(std::int32_t))) {
    return std::nullopt;
  }
  return v;
}

}  // namespace proteus
