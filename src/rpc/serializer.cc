#include "src/rpc/serializer.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"

namespace proteus {

std::size_t VarU64Size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void WireWriter::VarU64(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void WireWriter::Blob(std::span<const std::uint8_t> bytes) {
  U32(static_cast<std::uint32_t>(bytes.size()));
  AppendRaw(bytes.data(), bytes.size());
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<std::uint32_t>(s.size()));
  AppendRaw(s.data(), s.size());
}

void WireWriter::FloatArray(std::span<const float> values) {
  U32(static_cast<std::uint32_t>(values.size()));
  AppendRaw(values.data(), values.size() * sizeof(float));
}

void WireWriter::I32Array(std::span<const std::int32_t> values) {
  U32(static_cast<std::uint32_t>(values.size()));
  AppendRaw(values.data(), values.size() * sizeof(std::int32_t));
}

bool WireReader::Take(void* out, std::size_t n) {
  if (failed_ || data_.size() - offset_ < n) {
    failed_ = true;
    return false;
  }
  std::memcpy(out, data_.data() + offset_, n);
  offset_ += n;
  return true;
}

std::optional<std::uint8_t> WireReader::U8() {
  std::uint8_t v = 0;
  if (!Take(&v, sizeof(v))) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::uint32_t> WireReader::U32() {
  std::uint32_t v = 0;
  if (!Take(&v, sizeof(v))) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::uint64_t> WireReader::U64() {
  std::uint64_t v = 0;
  if (!Take(&v, sizeof(v))) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::int32_t> WireReader::I32() {
  std::int32_t v = 0;
  if (!Take(&v, sizeof(v))) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::int64_t> WireReader::I64() {
  std::int64_t v = 0;
  if (!Take(&v, sizeof(v))) {
    return std::nullopt;
  }
  return v;
}

std::optional<double> WireReader::F64() {
  double v = 0;
  if (!Take(&v, sizeof(v))) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::string> WireReader::Str() {
  const auto len = U32();
  if (!len.has_value() || *len > kMaxElements) {
    failed_ = true;
    return std::nullopt;
  }
  std::string s(*len, '\0');
  if (!Take(s.data(), *len)) {
    return std::nullopt;
  }
  return s;
}

std::optional<std::vector<float>> WireReader::FloatArray() {
  const auto len = U32();
  if (!len.has_value() || *len > kMaxElements) {
    failed_ = true;
    return std::nullopt;
  }
  std::vector<float> v(*len);
  if (!Take(v.data(), static_cast<std::size_t>(*len) * sizeof(float))) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::vector<std::int32_t>> WireReader::I32Array() {
  const auto len = U32();
  if (!len.has_value() || *len > kMaxElements) {
    failed_ = true;
    return std::nullopt;
  }
  std::vector<std::int32_t> v(*len);
  if (!Take(v.data(), static_cast<std::size_t>(*len) * sizeof(std::int32_t))) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::uint64_t> WireReader::VarU64() {
  std::uint64_t result = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    std::uint8_t byte = 0;
    if (!Take(&byte, 1)) {
      return std::nullopt;
    }
    const std::uint64_t bits = byte & 0x7F;
    if (shift == 63 && bits > 1) {
      failed_ = true;  // Tenth byte would overflow 64 bits.
      return std::nullopt;
    }
    result |= bits << shift;
    if ((byte & 0x80) == 0) {
      return result;
    }
  }
  failed_ = true;  // Continuation bit set past 10 bytes.
  return std::nullopt;
}

std::optional<std::vector<std::uint8_t>> WireReader::Blob() {
  const auto len = U32();
  if (!len.has_value() || *len > kMaxElements) {
    failed_ = true;
    return std::nullopt;
  }
  std::vector<std::uint8_t> v(*len);
  if (!Take(v.data(), *len)) {
    return std::nullopt;
  }
  return v;
}

bool WireReader::RawFloats(std::size_t n, std::vector<float>& out) {
  const std::size_t old = out.size();
  out.resize(old + n);
  if (!Take(out.data() + old, n * sizeof(float))) {
    out.resize(old);
    return false;
  }
  return true;
}

std::size_t DeltaBatchEncodedBytes(std::span<const std::uint64_t> sorted_keys,
                                   std::span<const std::uint32_t> cols) {
  PROTEUS_CHECK_EQ(sorted_keys.size(), cols.size());
  std::size_t bytes = 1 + VarU64Size(sorted_keys.size());
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < sorted_keys.size(); ++i) {
    const std::uint64_t delta = i == 0 ? sorted_keys[i] : sorted_keys[i] - prev;
    prev = sorted_keys[i];
    bytes += VarU64Size(delta) + VarU64Size(cols[i]) +
             static_cast<std::size_t>(cols[i]) * sizeof(float);
  }
  return bytes;
}

std::vector<std::uint8_t> EncodeDeltaBatch(std::span<const DeltaRow> rows) {
  // Stable order by key keeps duplicate coalescing deterministic: equal
  // keys are summed in input order.
  std::vector<std::size_t> order(rows.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&rows](std::size_t a, std::size_t b) {
    return rows[a].key < rows[b].key;
  });

  // Pre-compute the post-coalescing row set for the exact-size reserve.
  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> cols;
  keys.reserve(rows.size());
  cols.reserve(rows.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const DeltaRow& r = rows[order[i]];
    if (!keys.empty() && keys.back() == r.key) {
      PROTEUS_CHECK_EQ(static_cast<std::size_t>(cols.back()), r.values.size())
          << "duplicate rows for key " << r.key << " disagree on width";
      continue;
    }
    keys.push_back(r.key);
    cols.push_back(static_cast<std::uint32_t>(r.values.size()));
  }

  WireWriter w;
  w.Reserve(DeltaBatchEncodedBytes(keys, cols));
  w.U8(kDeltaBatchVersion);
  w.VarU64(keys.size());
  std::vector<float> scratch;
  std::uint64_t prev = 0;
  std::size_t i = 0;
  for (std::size_t k = 0; k < keys.size(); ++k) {
    w.VarU64(k == 0 ? keys[k] : keys[k] - prev);
    prev = keys[k];
    w.VarU64(cols[k]);
    // Count the duplicate run for this key.
    std::size_t run = 1;
    while (i + run < order.size() && rows[order[i + run]].key == keys[k]) {
      ++run;
    }
    if (run == 1) {
      w.RawFloats(rows[order[i]].values);
    } else {
      scratch.assign(rows[order[i]].values.begin(), rows[order[i]].values.end());
      for (std::size_t d = 1; d < run; ++d) {
        const std::span<const float> v = rows[order[i + d]].values;
        for (std::size_t c = 0; c < scratch.size(); ++c) {
          scratch[c] += v[c];
        }
      }
      w.RawFloats(scratch);
    }
    i += run;
  }
  return w.Take();
}

std::optional<DecodedDeltaBatch> DecodeDeltaBatch(std::span<const std::uint8_t> buf) {
  WireReader r(buf);
  const auto version = r.U8();
  if (!version.has_value() || *version != kDeltaBatchVersion) {
    return std::nullopt;
  }
  const auto count = r.VarU64();
  if (!count.has_value() || *count > WireReader::kMaxElements) {
    return std::nullopt;
  }
  DecodedDeltaBatch batch;
  batch.keys.reserve(static_cast<std::size_t>(*count));
  batch.offsets.reserve(static_cast<std::size_t>(*count) + 1);
  batch.offsets.push_back(0);
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto delta = r.VarU64();
    const auto cols = r.VarU64();
    if (!delta.has_value() || !cols.has_value() || *cols > WireReader::kMaxElements) {
      return std::nullopt;
    }
    std::uint64_t key = *delta;
    if (i > 0) {
      if (*delta == 0 || prev + *delta < prev) {
        return std::nullopt;  // Non-ascending or overflowing key sequence.
      }
      key = prev + *delta;
    }
    prev = key;
    if (!r.RawFloats(static_cast<std::size_t>(*cols), batch.values)) {
      return std::nullopt;
    }
    batch.keys.push_back(key);
    batch.offsets.push_back(batch.values.size());
  }
  if (!r.AtEnd()) {
    return std::nullopt;  // Trailing garbage.
  }
  return batch;
}

}  // namespace proteus
