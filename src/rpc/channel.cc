#include "src/rpc/channel.h"

#include <algorithm>

namespace proteus {

void Channel::Send(const Message& message) {
  ChannelFault fault;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fault_hook_) {
      fault = fault_hook_(message);
    }
    const MessageType type = TypeOf(message);
    std::vector<std::uint8_t> frame = EncodeMessage(message);
    bytes_sent_ += frame.size();
    ++messages_sent_;
    if (obs::Counter* c = sent_counters_.For(type)) {
      c->Increment();
    }
    if (obs::Counter* c = bytes_counters_.For(type)) {
      c->Add(frame.size());
    }
    const auto ledger_send = [&](const char* outcome) {
      if (ledger_ != nullptr) {
        ledger_->Record("rpc.send", "rpc", 0.0,
                        {{"channel", ledger_name_},
                         {"type", std::string(MessageTypeName(type))},
                         {"bytes", static_cast<std::int64_t>(frame.size())},
                         {"outcome", std::string(outcome)}});
      }
    };
    switch (fault.action) {
      case ChannelFault::Action::kDrop:
        ++messages_dropped_;
        if (obs::Counter* c = dropped_counters_.For(type)) {
          c->Increment();
        }
        ledger_send("drop");
        return;
      case ChannelFault::Action::kDelay:
        ++messages_delayed_;
        if (obs::Counter* c = delayed_counters_.For(type)) {
          c->Increment();
        }
        ledger_send("delay");
        queue_.push_back({std::move(frame), type, std::max(0, fault.delay_polls)});
        return;
      case ChannelFault::Action::kDuplicate: {
        const int copies = std::max(1, fault.copies);
        messages_duplicated_ += static_cast<std::uint64_t>(copies - 1);
        if (obs::Counter* c = duplicated_counters_.For(type)) {
          c->Add(static_cast<std::uint64_t>(copies - 1));
        }
        ledger_send("dup");
        for (int i = 1; i < copies; ++i) {
          queue_.push_back({frame, type, 0});
        }
        queue_.push_back({std::move(frame), type, 0});
        return;
      }
      case ChannelFault::Action::kDeliver:
        ledger_send("deliver");
        queue_.push_back({std::move(frame), type, 0});
        return;
    }
  }
}

std::optional<Message> Channel::Poll() {
  std::vector<std::uint8_t> frame;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Age every delayed frame by one poll, then deliver the oldest
    // deliverable one (delayed frames can be overtaken: reordering).
    auto ready = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->delay_polls > 0) {
        --it->delay_polls;
      } else if (ready == queue_.end()) {
        ready = it;
      }
    }
    if (ready == queue_.end()) {
      return std::nullopt;
    }
    frame = std::move(ready->frame);
    const MessageType type = ready->type;
    queue_.erase(ready);
    ++messages_delivered_;
    if (obs::Counter* c = delivered_counters_.For(type)) {
      c->Increment();
    }
  }
  return DecodeMessage(frame);
}

void Channel::SetObservability(obs::MetricsRegistry* metrics, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  sent_counters_ = {};
  bytes_counters_ = {};
  delivered_counters_ = {};
  dropped_counters_ = {};
  delayed_counters_ = {};
  duplicated_counters_ = {};
  if (metrics == nullptr) {
    return;
  }
  constexpr MessageType kAllTypes[] = {
      MessageType::kAppCharacteristics, MessageType::kAllocationRequest,
      MessageType::kAllocationGrant,    MessageType::kEvictionNotice,
      MessageType::kReadParam,          MessageType::kParamValue,
      MessageType::kUpdateParam,        MessageType::kWorkerReady,
      MessageType::kShardDelta,         MessageType::kReliableFrame};
  for (const MessageType type : kAllTypes) {
    const obs::Labels labels = {{"channel", name}, {"type", MessageTypeName(type)}};
    const auto idx = static_cast<std::size_t>(type);
    sent_counters_.by_type[idx] = metrics->GetCounter("rpc.messages.sent", labels);
    bytes_counters_.by_type[idx] = metrics->GetCounter("rpc.bytes.sent", labels);
    delivered_counters_.by_type[idx] = metrics->GetCounter("rpc.messages.delivered", labels);
    dropped_counters_.by_type[idx] = metrics->GetCounter("rpc.messages.dropped", labels);
    delayed_counters_.by_type[idx] = metrics->GetCounter("rpc.messages.delayed", labels);
    duplicated_counters_.by_type[idx] =
        metrics->GetCounter("rpc.messages.duplicated", labels);
  }
}

void Channel::SetLedger(obs::EventLedger* ledger, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  ledger_ = ledger;
  ledger_name_ = name;
}

void Channel::SetFaultHook(ChannelFaultHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_hook_ = std::move(hook);
}

std::size_t Channel::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::uint64_t Channel::messages_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_sent_;
}

std::uint64_t Channel::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_sent_;
}

std::uint64_t Channel::messages_delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_delivered_;
}

std::uint64_t Channel::messages_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_dropped_;
}

std::uint64_t Channel::messages_delayed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_delayed_;
}

std::uint64_t Channel::messages_duplicated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_duplicated_;
}

}  // namespace proteus
