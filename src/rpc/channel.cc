#include "src/rpc/channel.h"

namespace proteus {

void Channel::Send(const Message& message) {
  std::vector<std::uint8_t> frame = EncodeMessage(message);
  std::lock_guard<std::mutex> lock(mu_);
  bytes_sent_ += frame.size();
  ++messages_sent_;
  queue_.push_back(std::move(frame));
}

std::optional<Message> Channel::Poll() {
  std::vector<std::uint8_t> frame;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) {
      return std::nullopt;
    }
    frame = std::move(queue_.front());
    queue_.pop_front();
  }
  return DecodeMessage(frame);
}

std::size_t Channel::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::uint64_t Channel::messages_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_sent_;
}

std::uint64_t Channel::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_sent_;
}

}  // namespace proteus
