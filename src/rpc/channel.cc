#include "src/rpc/channel.h"

#include <algorithm>

namespace proteus {

void Channel::Send(const Message& message) {
  ChannelFault fault;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fault_hook_) {
      fault = fault_hook_(message);
    }
    std::vector<std::uint8_t> frame = EncodeMessage(message);
    bytes_sent_ += frame.size();
    ++messages_sent_;
    switch (fault.action) {
      case ChannelFault::Action::kDrop:
        ++messages_dropped_;
        return;
      case ChannelFault::Action::kDelay:
        ++messages_delayed_;
        queue_.push_back({std::move(frame), std::max(0, fault.delay_polls)});
        return;
      case ChannelFault::Action::kDeliver:
        queue_.push_back({std::move(frame), 0});
        return;
    }
  }
}

std::optional<Message> Channel::Poll() {
  std::vector<std::uint8_t> frame;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Age every delayed frame by one poll, then deliver the oldest
    // deliverable one (delayed frames can be overtaken: reordering).
    auto ready = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->delay_polls > 0) {
        --it->delay_polls;
      } else if (ready == queue_.end()) {
        ready = it;
      }
    }
    if (ready == queue_.end()) {
      return std::nullopt;
    }
    frame = std::move(ready->frame);
    queue_.erase(ready);
    ++messages_delivered_;
  }
  return DecodeMessage(frame);
}

void Channel::SetFaultHook(ChannelFaultHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_hook_ = std::move(hook);
}

std::size_t Channel::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::uint64_t Channel::messages_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_sent_;
}

std::uint64_t Channel::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_sent_;
}

std::uint64_t Channel::messages_delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_delivered_;
}

std::uint64_t Channel::messages_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_dropped_;
}

std::uint64_t Channel::messages_delayed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_delayed_;
}

}  // namespace proteus
