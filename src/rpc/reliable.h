// Reliable delivery session over a pair of raw Channels (ISSUE 5,
// Proteus §5): the raw rpc::Channel is fire-and-forget — under chaos a
// dropped frame is counted by the auditor but never recovered. A
// ReliableChannel wraps one data-direction Channel plus a reverse
// Channel for acknowledgements and masks drops, reorders, and
// duplicates entirely:
//
//  - every data frame carries a per-session monotonic sequence number
//    (starting at 1; seq 0 marks a pure ack frame),
//  - the receiver acknowledges with a cumulative ack (everything <= N
//    received) plus selective acks for out-of-order frames above it,
//  - the sender keeps a bounded in-flight window (flow control; excess
//    sends queue in a backlog) and retransmits unacked frames on a
//    sim-clock deadline with deterministic exponential backoff and
//    seeded jitter — same seed, same fault schedule => byte-identical
//    retransmit schedule, pinned by a golden test,
//  - the receiver dedups (cumulative point + out-of-order buffer) and
//    releases messages strictly in send order.
//
// All timestamps are virtual seconds on the caller's sim clock; the
// class has no timer thread — callers pump Tick()/Receive() like every
// other polled component in the runtime. Metrics: `rpc.retransmits`,
// `rpc.dup_delivered_suppressed`, `rpc.ack_rtt` (histogram), plus
// tracer spans on the "rpc" track for each acked-frame round trip.
#ifndef SRC_RPC_RELIABLE_H_
#define SRC_RPC_RELIABLE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/obs/ledger.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/rpc/channel.h"
#include "src/rpc/messages.h"

namespace proteus {

struct ReliableChannelConfig {
  std::uint32_t session = 1;
  // Max unacked data frames in flight; further Send()s queue in the
  // backlog until acks open the window.
  int window = 32;
  // Retransmission timeout schedule (virtual seconds): attempt k waits
  // initial_rto * backoff^(k-1), capped at max_rto, then scaled by a
  // seeded jitter factor uniform in [1 - jitter, 1 + jitter].
  double initial_rto = 0.05;
  double max_rto = 2.0;
  double backoff = 2.0;
  double jitter = 0.1;
  // Cap on selective-ack entries per ack frame.
  int max_sacks = 16;
  std::uint64_t seed = 1;
};

// One retransmission decision, for determinism goldens: same seed =>
// identical log.
struct RetransmitRecord {
  std::uint64_t seq = 0;
  int attempt = 0;  // 2 = first retransmit.
  double at = 0.0;  // Virtual send time of this attempt.
};

class ReliableChannel {
 public:
  // `data` carries sender->receiver frames, `ack` the reverse path.
  // Both outlive this object. The two endpoints of the session live in
  // one object because the whole transport is an in-process simulation;
  // Send()/Tick() belong to the sending party, Receive() to the peer.
  ReliableChannel(Channel* data, Channel* ack, ReliableChannelConfig config);

  // Queues `message` for reliable delivery. Sends immediately while the
  // in-flight window has room, otherwise backlogs.
  void Send(const Message& message, double now);

  // Receiver side: drains the data channel, dedups and reorders, emits
  // ack frames on the reverse channel, and returns the next in-order
  // message (or nullopt when nothing is deliverable yet). Call
  // repeatedly until nullopt to drain.
  std::optional<Message> Receive(double now);

  // Sender side: processes acks from the reverse channel, refills the
  // window from the backlog, and retransmits frames whose deadline has
  // passed. Call once per sim tick (or more; idempotent at a fixed
  // `now`).
  void Tick(double now);

  // True when every queued message has been sent and acknowledged.
  // Channel queues may still hold stale duplicates; those are dedup'd
  // on arrival and never affect delivery.
  bool Quiescent() const;

  void SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics,
                        const std::string& name);

  // Attaches the causal event ledger. Each first transmission records an
  // "rpc.send.reliable" event whose id rides in the ARQ window, so every
  // "rpc.retransmit" and the final "rpc.delivery" are parented to the
  // send they stem from — causality through state, not the call stack.
  // Duplicate arrivals record "rpc.dup_suppressed". Pass nullptr to
  // detach.
  void SetLedger(obs::EventLedger* ledger, const std::string& name);

  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t dup_suppressed() const { return dup_suppressed_; }
  std::uint64_t messages_accepted() const { return messages_accepted_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::size_t in_flight() const { return in_flight_.size(); }
  std::size_t backlog() const { return backlog_.size(); }
  const std::vector<RetransmitRecord>& retransmit_log() const { return retransmit_log_; }

 private:
  struct InFlight {
    std::vector<std::uint8_t> payload;  // Encoded inner message.
    int attempts = 0;
    double first_sent = 0.0;
    double next_retx = 0.0;
    // Ledger id of the original "rpc.send.reliable", carried so later
    // retransmits/delivery can name their cause.
    obs::EventId send_event = obs::kNoEvent;
  };

  void SendDataFrame(std::uint64_t seq, const InFlight& entry);
  void SendAckFrame();
  double NextTimeout(int attempts);
  void HandleAck(const ReliableFrameMsg& frame, double now);
  void AcceptData(ReliableFrameMsg frame, double now);
  void RefillWindow(double now);

  Channel* data_;
  Channel* ack_;
  ReliableChannelConfig config_;
  Rng rng_;

  // Sender state.
  std::uint64_t next_seq_ = 1;
  std::uint64_t cum_acked_ = 0;
  std::deque<std::vector<std::uint8_t>> backlog_;
  std::map<std::uint64_t, InFlight> in_flight_;

  // Receiver state.
  std::uint64_t received_up_to_ = 0;
  std::map<std::uint64_t, std::vector<std::uint8_t>> out_of_order_;
  std::deque<Message> deliverable_;

  // Stats.
  std::uint64_t retransmits_ = 0;
  std::uint64_t dup_suppressed_ = 0;
  std::uint64_t messages_accepted_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::vector<RetransmitRecord> retransmit_log_;

  obs::Tracer* tracer_ = nullptr;
  obs::EventLedger* ledger_ = nullptr;
  std::string ledger_name_;
  obs::Counter* retransmits_counter_ = nullptr;
  obs::Counter* dup_suppressed_counter_ = nullptr;
  obs::Histogram* ack_rtt_hist_ = nullptr;
};

}  // namespace proteus

#endif  // SRC_RPC_RELIABLE_H_
