#include "src/rpc/messages.h"

namespace proteus {

namespace {

void EncodeBody(WireWriter& w, const AppCharacteristicsMsg& m) {
  w.F64(m.phi);
  w.F64(m.sigma);
  w.F64(m.lambda);
  w.F64(m.work_per_core_hour);
}

void EncodeBody(WireWriter& w, const AllocationRequestMsg& m) {
  w.Str(m.zone);
  w.Str(m.instance_type);
  w.I32(m.count);
  w.F64(m.bid);
}

void EncodeBody(WireWriter& w, const AllocationGrantMsg& m) {
  w.I32(m.allocation);
  w.I32Array(m.node_ids);
  w.I32(m.vcpus_per_node);
}

void EncodeBody(WireWriter& w, const EvictionNoticeMsg& m) {
  w.I32(m.allocation);
  w.I32Array(m.node_ids);
  w.F64(m.warning_seconds);
}

void EncodeBody(WireWriter& w, const ReadParamMsg& m) {
  w.I32(m.table);
  w.I64(m.row);
}

void EncodeBody(WireWriter& w, const ParamValueMsg& m) {
  w.I32(m.table);
  w.I64(m.row);
  w.FloatArray(m.value);
}

void EncodeBody(WireWriter& w, const UpdateParamMsg& m) {
  w.I32(m.table);
  w.I64(m.row);
  w.FloatArray(m.delta);
}

void EncodeBody(WireWriter& w, const WorkerReadyMsg& m) {
  w.I32(m.node_id);
  w.I64(m.items_loaded);
}

void EncodeBody(WireWriter& w, const ShardDeltaMsg& m) {
  w.I32(m.shard);
  w.I64(m.clock);
  w.Blob(m.payload);
}

void EncodeBody(WireWriter& w, const ReliableFrameMsg& m) {
  w.U32(m.session);
  w.VarU64(m.seq);
  w.VarU64(m.cum_ack);
  w.VarU64(m.sacks.size());
  for (const std::uint64_t sack : m.sacks) {
    w.VarU64(sack);
  }
  w.Blob(m.payload);
}

void EncodeBody(WireWriter& w, const RecoveryNoticeMsg& m) {
  w.I32(m.depth);
  w.I64(m.restored_clock);
  w.I32(m.lost_clocks);
  w.VarU64(m.checkpoint_epoch);
}

template <typename T>
std::optional<Message> Finish(WireReader& r, T&& value) {
  if (r.failed() || !r.AtEnd()) {
    return std::nullopt;  // Truncated or trailing garbage.
  }
  return Message(std::forward<T>(value));
}

std::optional<Message> DecodeBody(MessageType type, WireReader& r) {
  switch (type) {
    case MessageType::kAppCharacteristics: {
      AppCharacteristicsMsg m;
      m.phi = r.F64().value_or(0.0);
      m.sigma = r.F64().value_or(0.0);
      m.lambda = r.F64().value_or(0.0);
      m.work_per_core_hour = r.F64().value_or(0.0);
      return Finish(r, std::move(m));
    }
    case MessageType::kAllocationRequest: {
      AllocationRequestMsg m;
      m.zone = r.Str().value_or("");
      m.instance_type = r.Str().value_or("");
      m.count = r.I32().value_or(0);
      m.bid = r.F64().value_or(0.0);
      return Finish(r, std::move(m));
    }
    case MessageType::kAllocationGrant: {
      AllocationGrantMsg m;
      m.allocation = r.I32().value_or(kInvalidAllocation);
      m.node_ids = r.I32Array().value_or(std::vector<std::int32_t>{});
      m.vcpus_per_node = r.I32().value_or(0);
      return Finish(r, std::move(m));
    }
    case MessageType::kEvictionNotice: {
      EvictionNoticeMsg m;
      m.allocation = r.I32().value_or(kInvalidAllocation);
      m.node_ids = r.I32Array().value_or(std::vector<std::int32_t>{});
      m.warning_seconds = r.F64().value_or(0.0);
      return Finish(r, std::move(m));
    }
    case MessageType::kReadParam: {
      ReadParamMsg m;
      m.table = r.I32().value_or(0);
      m.row = r.I64().value_or(0);
      return Finish(r, std::move(m));
    }
    case MessageType::kParamValue: {
      ParamValueMsg m;
      m.table = r.I32().value_or(0);
      m.row = r.I64().value_or(0);
      m.value = r.FloatArray().value_or(std::vector<float>{});
      return Finish(r, std::move(m));
    }
    case MessageType::kUpdateParam: {
      UpdateParamMsg m;
      m.table = r.I32().value_or(0);
      m.row = r.I64().value_or(0);
      m.delta = r.FloatArray().value_or(std::vector<float>{});
      return Finish(r, std::move(m));
    }
    case MessageType::kWorkerReady: {
      WorkerReadyMsg m;
      m.node_id = r.I32().value_or(kInvalidNode);
      m.items_loaded = r.I64().value_or(0);
      return Finish(r, std::move(m));
    }
    case MessageType::kShardDelta: {
      ShardDeltaMsg m;
      m.shard = r.I32().value_or(0);
      m.clock = r.I64().value_or(0);
      m.payload = r.Blob().value_or(std::vector<std::uint8_t>{});
      return Finish(r, std::move(m));
    }
    case MessageType::kReliableFrame: {
      ReliableFrameMsg m;
      m.session = r.U32().value_or(0);
      m.seq = r.VarU64().value_or(0);
      m.cum_ack = r.VarU64().value_or(0);
      const std::uint64_t count = r.VarU64().value_or(0);
      if (count > WireReader::kMaxElements) {
        return std::nullopt;  // Hostile length prefix.
      }
      m.sacks.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count && !r.failed(); ++i) {
        m.sacks.push_back(r.VarU64().value_or(0));
      }
      m.payload = r.Blob().value_or(std::vector<std::uint8_t>{});
      return Finish(r, std::move(m));
    }
    case MessageType::kRecoveryNotice: {
      RecoveryNoticeMsg m;
      m.depth = r.I32().value_or(0);
      m.restored_clock = r.I64().value_or(0);
      m.lost_clocks = r.I32().value_or(0);
      m.checkpoint_epoch = r.VarU64().value_or(0);
      return Finish(r, std::move(m));
    }
  }
  return std::nullopt;
}

}  // namespace

MessageType TypeOf(const Message& message) {
  struct Visitor {
    MessageType operator()(const AppCharacteristicsMsg&) const {
      return MessageType::kAppCharacteristics;
    }
    MessageType operator()(const AllocationRequestMsg&) const {
      return MessageType::kAllocationRequest;
    }
    MessageType operator()(const AllocationGrantMsg&) const {
      return MessageType::kAllocationGrant;
    }
    MessageType operator()(const EvictionNoticeMsg&) const {
      return MessageType::kEvictionNotice;
    }
    MessageType operator()(const ReadParamMsg&) const { return MessageType::kReadParam; }
    MessageType operator()(const ParamValueMsg&) const { return MessageType::kParamValue; }
    MessageType operator()(const UpdateParamMsg&) const { return MessageType::kUpdateParam; }
    MessageType operator()(const WorkerReadyMsg&) const { return MessageType::kWorkerReady; }
    MessageType operator()(const ShardDeltaMsg&) const { return MessageType::kShardDelta; }
    MessageType operator()(const ReliableFrameMsg&) const {
      return MessageType::kReliableFrame;
    }
    MessageType operator()(const RecoveryNoticeMsg&) const {
      return MessageType::kRecoveryNotice;
    }
  };
  return std::visit(Visitor{}, message);
}

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kAppCharacteristics:
      return "app_characteristics";
    case MessageType::kAllocationRequest:
      return "allocation_request";
    case MessageType::kAllocationGrant:
      return "allocation_grant";
    case MessageType::kEvictionNotice:
      return "eviction_notice";
    case MessageType::kReadParam:
      return "read_param";
    case MessageType::kParamValue:
      return "param_value";
    case MessageType::kUpdateParam:
      return "update_param";
    case MessageType::kWorkerReady:
      return "worker_ready";
    case MessageType::kShardDelta:
      return "shard_delta";
    case MessageType::kReliableFrame:
      return "reliable_frame";
    case MessageType::kRecoveryNotice:
      return "recovery_notice";
  }
  return "unknown";
}

std::vector<std::uint8_t> EncodeMessage(const Message& message) {
  WireWriter w;
  w.U8(static_cast<std::uint8_t>(TypeOf(message)));
  std::visit([&w](const auto& m) { EncodeBody(w, m); }, message);
  return w.Take();
}

std::optional<Message> DecodeMessage(std::span<const std::uint8_t> frame) {
  WireReader r(frame);
  const auto tag = r.U8();
  if (!tag.has_value() || *tag < 1 ||
      *tag > static_cast<std::uint8_t>(MessageType::kRecoveryNotice)) {
    return std::nullopt;
  }
  return DecodeBody(static_cast<MessageType>(*tag), r);
}

}  // namespace proteus
