// In-process message channel standing in for the ZMQ pair sockets of §5.
// Ordered, thread-safe, with byte/message counters so tests can verify
// control-plane traffic volumes.
#ifndef SRC_RPC_CHANNEL_H_
#define SRC_RPC_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "src/rpc/messages.h"

namespace proteus {

class Channel {
 public:
  // Frames and enqueues the message.
  void Send(const Message& message);

  // Dequeues and decodes the next message (nullopt when empty).
  std::optional<Message> Poll();

  std::size_t pending() const;
  std::uint64_t messages_sent() const;
  std::uint64_t bytes_sent() const;

 private:
  mutable std::mutex mu_;
  std::deque<std::vector<std::uint8_t>> queue_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace proteus

#endif  // SRC_RPC_CHANNEL_H_
