// In-process message channel standing in for the ZMQ pair sockets of §5.
// Ordered, thread-safe, with byte/message counters so tests can verify
// control-plane traffic volumes.
//
// For chaos testing the channel accepts a fault hook: every Send() is
// routed through it, and the hook may deliver the frame normally, drop
// it on the floor, or hold it back for a number of Poll() calls
// (delayed frames can be overtaken, modeling reordering), or enqueue
// extra copies (duplication). The counters always satisfy
// messages_sent == delivered + dropped + pending - duplicated_extras,
// which the ConsistencyAuditor checks during chaos soaks.
#ifndef SRC_RPC_CHANNEL_H_
#define SRC_RPC_CHANNEL_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>

#include "src/obs/ledger.h"
#include "src/obs/metrics.h"
#include "src/rpc/messages.h"

namespace proteus {

// What the fault hook decided to do with one outgoing message.
struct ChannelFault {
  enum class Action {
    kDeliver,    // Enqueue normally.
    kDrop,       // Lose the frame; it never becomes pending.
    kDelay,      // Enqueue but withhold for `delay_polls` Poll() calls.
    kDuplicate,  // Enqueue `copies` identical frames (copies >= 1).
  };
  Action action = Action::kDeliver;
  int delay_polls = 0;
  int copies = 2;
};

using ChannelFaultHook = std::function<ChannelFault(const Message&)>;

class Channel {
 public:
  // Frames and enqueues the message (subject to the fault hook).
  void Send(const Message& message);

  // Dequeues and decodes the next deliverable message. Returns nullopt
  // when the queue is empty or every pending frame is still delayed;
  // each call ages delayed frames by one poll.
  std::optional<Message> Poll();

  // Installs (or clears, with nullptr) the fault hook.
  void SetFaultHook(ChannelFaultHook hook);

  // Registers per-message-type counters (rpc.messages.sent / .delivered /
  // .dropped / .delayed and rpc.bytes.sent) labeled with this channel's
  // name in `metrics`. Pass nullptr to detach.
  void SetObservability(obs::MetricsRegistry* metrics, const std::string& name);

  // Attaches the causal event ledger: every Send() records an
  // "rpc.send" event carrying the fault outcome
  // (deliver/drop/delay/dup). The raw channel has no sim clock, so
  // events carry ts 0; causal order is the ledger append order. Pass
  // nullptr to detach.
  void SetLedger(obs::EventLedger* ledger, const std::string& name);

  std::size_t pending() const;
  std::uint64_t messages_sent() const;
  std::uint64_t bytes_sent() const;
  std::uint64_t messages_delivered() const;
  std::uint64_t messages_dropped() const;
  std::uint64_t messages_delayed() const;
  // Extra copies enqueued beyond the original sends (a kDuplicate fault
  // with copies == N adds N - 1 here).
  std::uint64_t messages_duplicated() const;

 private:
  struct Entry {
    std::vector<std::uint8_t> frame;
    MessageType type = MessageType::kAppCharacteristics;
    int delay_polls = 0;
  };

  // Cached counter handles for one outcome, indexed by message type tag.
  struct TypeCounters {
    std::array<obs::Counter*, 16> by_type{};
    obs::Counter* For(MessageType type) {
      const auto idx = static_cast<std::size_t>(type);
      return idx < by_type.size() ? by_type[idx] : nullptr;
    }
  };

  mutable std::mutex mu_;
  std::deque<Entry> queue_;
  ChannelFaultHook fault_hook_;
  obs::EventLedger* ledger_ = nullptr;
  std::string ledger_name_;
  TypeCounters sent_counters_;
  TypeCounters bytes_counters_;
  TypeCounters delivered_counters_;
  TypeCounters dropped_counters_;
  TypeCounters delayed_counters_;
  TypeCounters duplicated_counters_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t messages_delayed_ = 0;
  std::uint64_t messages_duplicated_ = 0;
};

}  // namespace proteus

#endif  // SRC_RPC_CHANNEL_H_
