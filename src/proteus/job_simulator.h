// Trace-driven long-horizon job simulation (§6.3 methodology).
//
// The paper's cost evaluation replays recorded spot-market traces from
// many random starting points and simulates each execution scheme over
// them, with application behaviour abstracted by the empirically-set
// parameters phi / sigma / lambda (Table 2) and the measured 17%
// checkpointing overhead. This simulator does the same over our traces.
//
// Schemes:
//  - kOnDemandOnly:        the reference: N on-demand machines.
//  - kStandardCheckpoint:  all-spot, bid = on-demand price on the
//                          cheapest market, checkpoint/restart recovery.
//  - kStandardAgileML:     AgileML elasticity (tiered reliability, no
//                          checkpoint overhead, cheap evictions) but the
//                          standard bidding strategy.
//  - kProteus:             AgileML + BidBrain.
#ifndef SRC_PROTEUS_JOB_SIMULATOR_H_
#define SRC_PROTEUS_JOB_SIMULATOR_H_

#include <optional>
#include <string>
#include <vector>

#include "src/bidbrain/acquisition_policy.h"
#include "src/bidbrain/bidbrain.h"
#include "src/bidbrain/eviction_estimator.h"
#include "src/common/types.h"
#include "src/market/spot_market.h"
#include "src/proteus/accounting.h"

namespace proteus {

enum class SchemeKind {
  kOnDemandOnly,
  kStandardCheckpoint,
  kStandardAgileML,
  kProteus,
  // Flint-style baseline (§8): checkpoint/restart elasticity, but the
  // capacity target is split across the cheapest distinct markets to
  // reduce the probability of one revocation taking the whole job.
  kFlintDiversified,
};

const char* SchemeName(SchemeKind scheme);

struct JobSpec {
  // Total work in vCPU-hours of worker machines. Helper below derives it
  // from a reference cluster and duration.
  WorkUnits total_work = 1024.0;
  // Reference on-demand cluster (the baseline configuration).
  std::string reference_type = "c4.2xlarge";
  int reference_count = 64;

  // total_work such that the reference cluster finishes in `duration`.
  static JobSpec ForReferenceDuration(const InstanceTypeCatalog& catalog,
                                      const std::string& type, int count, SimDuration duration,
                                      double phi);
};

struct SchemeConfig {
  // Reliable tier for AgileML-based schemes (paper: 3 on-demand).
  int on_demand_count = 3;
  std::string on_demand_type = "c4.xlarge";
  // Capacity target, in vCPUs, for the standard bidding strategy.
  int standard_target_vcpus = 512;
  // Scalability / overhead profiles.
  AppProfile agileml_profile;
  AppProfile checkpoint_profile;
  // Checkpointing scheme parameters (§6.3: 17% observed overhead).
  double checkpoint_overhead = 0.17;
  SimDuration checkpoint_write_time = 90 * kSecond;
  SimDuration checkpoint_restart_delay = 5 * kMinute;
  // Decision cadence for bidding policies.
  SimDuration decision_period = 2 * kMinute;
  BidBrainConfig bidbrain;
  // Safety horizon: give up after this much simulated time.
  SimDuration max_runtime = 10 * kDay;
};

// Per-allocation slice of the final bill, for accounting audits (the
// backtest property tests check that the job bill is exactly the sum of
// these and that free compute only comes from evicted allocations).
struct AllocationBillDetail {
  AllocationId id = kInvalidAllocation;
  bool on_demand = false;
  bool evicted = false;  // Evicted before the job ended.
  int count = 0;
  JobBill bill;
};

struct JobResult {
  bool completed = false;
  SimDuration runtime = 0.0;
  JobBill bill;
  int evictions = 0;         // Allocation-level eviction events.
  int acquisitions = 0;      // Spot allocation requests granted.
  WorkUnits work_done = 0.0;
  // One entry per allocation the run ever held; bill is the sum of the
  // entries' bills.
  std::vector<AllocationBillDetail> allocation_bills;
  // Cost of the same job on the reference on-demand cluster, for
  // normalization (computed by the caller or via RunScheme on
  // kOnDemandOnly).
};

class JobSimulator {
 public:
  JobSimulator(const InstanceTypeCatalog* catalog, const TraceStore* traces,
               const EvictionModel* estimator);

  // Runs one scheme over the traces starting at `start`. Each call uses
  // a fresh SpotMarket so billing is isolated per run. kProteus routes
  // through the policy-driven path below with a BidBrain policy, so the
  // two entry points agree bit-for-bit on the paper's scheme.
  JobResult Run(SchemeKind scheme, const JobSpec& job, const SchemeConfig& config,
                SimTime start) const;

  // Policy-driven run (the Policy Lab seam, DESIGN.md §9): the same
  // event loop as kProteus, but every acquisition/termination decision
  // is delegated to `policy`. When policy.OnDemandDoesWork() the initial
  // footprint is the reference on-demand cluster and on-demand machines
  // produce the work; otherwise it is the reliable serving tier
  // (config.on_demand_count x config.on_demand_type, W = 0) and spot
  // instances produce the work. Deterministic: same (traces, policy,
  // job, config, start) always yields the same JobResult.
  JobResult Run(const AcquisitionPolicy& policy, const JobSpec& job, const SchemeConfig& config,
                SimTime start) const;

 private:
  const InstanceTypeCatalog* catalog_;
  const TraceStore* traces_;
  const EvictionModel* estimator_;
};

}  // namespace proteus

#endif  // SRC_PROTEUS_JOB_SIMULATOR_H_
