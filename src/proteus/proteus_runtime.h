// ProteusRuntime: the full §5 integration. Couples a live AgileML
// training run to the spot market through BidBrain (Fig. 7):
//
//   - BidBrain watches market prices and makes allocation decisions
//     every two minutes of (virtual) time, near billing-hour ends, and
//     immediately after evictions;
//   - granted allocations materialize as transient AgileML nodes that
//     preload input data in the background and join the computation;
//   - the elasticity controller polls for eviction warnings every five
//     seconds (§3.3); warned evictions trigger graceful scale-down,
//     missed warnings ("effective failures") trigger rollback recovery;
//   - billing follows the market simulator's hourly rules.
//
// Unlike JobSimulator (which abstracts the application into phi / sigma
// / lambda for long-horizon cost studies, as the paper's §6.3 does),
// this runtime executes the actual ML application: the model really
// converges while machines come and go.
#ifndef SRC_PROTEUS_PROTEUS_RUNTIME_H_
#define SRC_PROTEUS_PROTEUS_RUNTIME_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/agileml/runtime.h"
#include "src/bidbrain/bidbrain.h"
#include "src/market/serverless_tier.h"
#include "src/market/spot_market.h"
#include "src/obs/ledger.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/proteus/accounting.h"
#include "src/rpc/channel.h"

namespace proteus {

struct ProteusConfig {
  AgileMLConfig agileml;
  BidBrainConfig bidbrain;
  // Reliable tier (never terminated; §4.2).
  int on_demand_count = 3;
  std::string on_demand_type = "c4.xlarge";
  std::string on_demand_zone;  // Defaults to the first zone in the traces.
  // Elasticity controller's warning-poll period (§3.3).
  SimDuration warning_poll = 5 * kSecond;
  SimDuration decision_period = 2 * kMinute;
  // Fraction of evictions whose 2-minute warning is missed, turning the
  // eviction into an effective failure handled by rollback (§3.3).
  double effective_failure_fraction = 0.0;
  // Fraction of *missed-warning* evictions that are additionally silent:
  // no eviction notice ever reaches the controller — the nodes simply
  // stop heartbeating, and only the failure detector (which must be
  // enabled in agileml.detector when this is > 0) notices, confirms
  // them dead, and triggers the rollback. Models the unannounced spot
  // terminations the paper's notification path cannot see.
  double silent_failure_fraction = 0.0;
  // --- Ultra-transient serverless tier (zero eviction warning) ---
  // Target number of serverless worker nodes to keep enrolled (0 = the
  // tier is disabled). Requires agileml.detector.enabled: serverless
  // losses carry no notification whatsoever, so only the heartbeat
  // detector can catch them. Acquisition is clamped every decision point
  // by the TierGuard admission headroom (agileml.tier_guard).
  int serverless_target = 0;
  // Slots acquired per serverless allocation (burst granularity).
  int serverless_nodes_per_allocation = 4;
  ServerlessTierConfig serverless;
  // Checkpoint the reliable tier every this many clocks (0 = never).
  // Insures against reliable-node failure; free in stage 3 (§3.3).
  int checkpoint_every = 0;
  // Compute the training objective every this many clocks (0 = never).
  int objective_every = 0;
  std::uint64_t seed = 99;
};

struct ProteusStatus {
  Clock clock = 0;
  SimTime now = 0.0;            // Market time.
  SimDuration virtual_time = 0.0;
  int transient_nodes = 0;      // Ready + preparing.
  int serverless_nodes = 0;     // Ready + preparing (ultra-transient).
  int evictions = 0;
  int failures = 0;
  // Subset of `failures` that arrived with no notification at all and
  // were caught by the heartbeat failure detector.
  int silent_failures = 0;
  int acquisitions = 0;
  // Allocations revoked before any of their nodes finished preloading;
  // they never joined the computation, so they are not evictions or
  // failures and cost no clocks.
  int aborted_preloads = 0;
  int lost_clocks = 0;
  Money cost_so_far = 0.0;
  // Parameter-store shape: stripe count and max/mean live-row skew
  // (1.0 = balanced; see ModelStore::ShardImbalance).
  int model_shards = 1;
  double shard_imbalance = 1.0;
};

// Per-tier damage/cost attribution for a run (ISSUE 10 satellite):
// `evictions` counts allocations the market took back (any path);
// warned_losses is the subset drained gracefully inside a warning
// window, silent_losses the subset caught only by the failure detector.
// The reliable tier never loses allocations; the serverless tier's
// losses are all silent by construction (zero warning).
struct ProteusTierBreakdown {
  Money cost = 0.0;
  int evictions = 0;
  int warned_losses = 0;
  int silent_losses = 0;
  int lost_clocks = 0;
};

struct ProteusRunSummary {
  int clocks = 0;
  SimDuration runtime = 0.0;
  JobBill bill;
  int evictions = 0;
  int failures = 0;
  int silent_failures = 0;  // Detector-caught subset of `failures`.
  int acquisitions = 0;
  int aborted_preloads = 0;
  int lost_clocks = 0;
  double final_objective = 0.0;
  std::vector<double> objective_trace;  // When objective_every > 0.
  int model_shards = 1;
  double shard_imbalance = 1.0;  // At end of run.
  // Durability traffic (PR 6): checkpoint bytes serialized out of /
  // restored into the model over the run, and how many completed clocks
  // checkpoint restores rolled back (a subset of `lost_clocks`).
  std::uint64_t checkpoint_bytes_written = 0;
  std::uint64_t checkpoint_bytes_restored = 0;
  int restore_clocks_lost = 0;
  // Per-tier breakdown (cost, evictions, warned vs. silent losses,
  // clocks lost). tier_serverless.cost is additionally folded into
  // bill.cost so the headline total covers all three tiers.
  ProteusTierBreakdown tier_reliable;
  ProteusTierBreakdown tier_transient;
  ProteusTierBreakdown tier_serverless;
  int serverless_acquisitions = 0;  // Subset of `acquisitions`.
};

class ProteusRuntime {
 public:
  ProteusRuntime(MLApp* app, const InstanceTypeCatalog* catalog, const TraceStore* traces,
                 const EvictionModel* estimator, ProteusConfig config, SimTime start);
  ~ProteusRuntime();

  ProteusRuntime(const ProteusRuntime&) = delete;
  ProteusRuntime& operator=(const ProteusRuntime&) = delete;

  // Attaches the whole §5 stack to an observability sink: allocation
  // lifecycle instants (bid -> preload -> active -> evicted/failed/
  // aborted/terminated) land on the "proteus" track at market time, the
  // accumulated job cost is exported as gauges (total plus one per
  // allocation), and the call is forwarded to the embedded AgileML
  // runtime, BidBrain, and both control channels. Either may be nullptr.
  void SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  // Attaches the causal event ledger: allocation lifecycle events
  // mirror onto it ("alloc.*", component "proteus"), every Step records
  // a "cost.sample" carrying the accumulated job bill (the analyzer
  // normalizes its synthetic cost split to the last sample), and the
  // call forwards to the embedded AgileML runtime and both control
  // channels. Pass nullptr to detach.
  void SetLedger(obs::EventLedger* ledger);

  // Runs one training clock, advancing market time and processing all
  // market events (decisions, warnings, evictions, renewals) that fall
  // inside it.
  void Step();

  // Runs until the completed-clock count reaches `target_clock`
  // (rollbacks can make this take more iterations than the difference).
  ProteusRunSummary Train(int target_clock);

  ProteusStatus Status() const;
  const AgileMLRuntime& agileml() const { return *agileml_; }
  // The ultra-transient tier's market surface (nullptr when disabled).
  const ServerlessTier* serverless_tier() const { return serverless_.get(); }
  // Mutable access for chaos/fault injection: lets a test or the chaos
  // harness drive checkpoints, restores, and node failures that the
  // market alone would not produce (e.g. reliable-tier failures).
  AgileMLRuntime& mutable_agileml() { return *agileml_; }
  const SpotMarket& market() const { return market_; }
  SimTime now() const { return now_; }
  // §5 wiring: the message channels between components (Fig. 7).
  // BidBrain -> cloud API (allocation requests).
  const Channel& api_channel() const { return api_channel_; }
  // BidBrain -> elasticity controller (grants, eviction notices).
  const Channel& controller_channel() const { return controller_channel_; }
  // Mutable channel access so chaos runs can install fault hooks
  // (message drop/delay) on the §5 control links.
  Channel& mutable_api_channel() { return api_channel_; }
  Channel& mutable_controller_channel() { return controller_channel_; }

 private:
  struct TrackedAllocation {
    AllocationId id = kInvalidAllocation;
    std::vector<NodeId> nodes;
    bool warned = false;       // Eviction warning already handled.
    bool terminating = false;  // Renewal decision said terminate.
    bool active = false;       // At least one node has been incorporated.
    // Terminated silently: the market took the nodes but no notice was
    // sent; the entry stays live until the detector confirms the death.
    bool silenced = false;
    SimTime terminate_at = 0.0;
  };

  // One serverless allocation's lifecycle. There is no warned state: a
  // revocation cuts both planes at once and only the detector notices.
  struct TrackedServerless {
    AllocationId id = kInvalidAllocation;  // ServerlessTier id space.
    std::vector<NodeId> nodes;
    bool active = false;   // At least one node incorporated.
    bool revoked = false;  // Revocation applied; awaiting confirmation.
  };

  std::vector<LiveAllocation> LiveView() const;
  void RunDecisionPoint();
  // Tops the serverless tier up to its target, clamped by the TierGuard
  // admission headroom.
  void RunServerlessAcquisition();
  // Handles warnings/evictions/terminations due at or before `until`.
  void ProcessMarketEventsUntil(SimTime until);
  // Applies due zero-warning serverless revocations: ready victims stop
  // working and heartbeating in the same instant (SetNodeRevoked) and
  // are only accounted once the detector confirms them dead.
  void ProcessServerlessEventsUntil(SimTime until);
  void HandleEviction(TrackedAllocation& tracked, bool warned);
  // Emits one "alloc.<event>" instant for a serverless allocation.
  void RecordServerlessEvent(const char* event, const TrackedServerless& tracked,
                             obs::TraceArgs extra = {});
  // Emits one "alloc.<event>" lifecycle instant on the "proteus" track.
  void RecordAllocEvent(const char* event, const TrackedAllocation& tracked,
                        obs::TraceArgs extra = {});
  // Refreshes proteus.cost.dollars and the per-allocation cost gauges.
  void UpdateCostGauges();

  MLApp* app_;
  const InstanceTypeCatalog* catalog_;
  Channel api_channel_;
  Channel controller_channel_;
  ProteusConfig config_;
  SpotMarket market_;
  BidBrain bidbrain_;
  std::unique_ptr<AgileMLRuntime> agileml_;
  Rng rng_;

  SimTime start_;
  SimTime now_;
  SimTime next_decision_;
  NodeId next_node_id_ = 0;
  std::map<AllocationId, TrackedAllocation> live_;
  AllocationId on_demand_allocation_ = kInvalidAllocation;
  // Ultra-transient tier (present only when serverless_target > 0).
  std::unique_ptr<ServerlessTier> serverless_;
  std::map<AllocationId, TrackedServerless> serverless_live_;

  int evictions_ = 0;
  int failures_ = 0;
  int silent_failures_ = 0;
  int acquisitions_ = 0;
  int aborted_preloads_ = 0;
  // Per-tier damage attribution (reliable allocations never die).
  int transient_lost_clocks_ = 0;
  int serverless_losses_ = 0;       // All silent by construction.
  int serverless_lost_clocks_ = 0;
  int serverless_acquisitions_ = 0;

  // Observability sinks (optional) and cached handles. Per-allocation
  // cost gauges are registered lazily as allocations appear; allocation
  // ids restart at 0 every run, so cardinality stays bounded.
  obs::Tracer* tracer_ = nullptr;
  obs::EventLedger* ledger_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Gauge* total_cost_gauge_ = nullptr;
  obs::Counter* acquisitions_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* failures_counter_ = nullptr;
  obs::Counter* aborted_counter_ = nullptr;
};

}  // namespace proteus

#endif  // SRC_PROTEUS_PROTEUS_RUNTIME_H_
