// Automated estimation of BidBrain's application parameters (§4.1:
// "In future work, we plan to automate the process of determining phi,
// sigma, lambda and nu. Currently, we set phi, sigma, lambda
// empirically").
//
// The estimator performs exactly the measurements the authors did by
// hand:
//   - phi: a strong-scaling probe (time-per-clock at two cluster sizes);
//   - sigma: the time the application fails to make full-speed progress
//     after a bulk addition (measured against the post-change steady
//     state);
//   - lambda: the same for a bulk warned eviction (the Fig. 16 blip).
// nu needs no probe: it is the instance's vCPU count (footnote 7).
#ifndef SRC_PROTEUS_PROFILE_ESTIMATOR_H_
#define SRC_PROTEUS_PROFILE_ESTIMATOR_H_

#include <functional>
#include <memory>

#include "src/agileml/app.h"
#include "src/agileml/runtime.h"
#include "src/bidbrain/app_profile.h"

namespace proteus {

struct ProfileEstimatorConfig {
  // Scaling probe sizes (total nodes; 1 reliable + rest transient above
  // the base size).
  int base_nodes = 8;
  int scaled_nodes = 32;
  int cores_per_node = 8;
  int warmup_clocks = 2;
  int measure_clocks = 4;
  // Elasticity probes: nodes added/evicted on top of the base cluster.
  int churn_nodes = 8;
};

class ProfileEstimator {
 public:
  ProfileEstimator(std::function<std::unique_ptr<MLApp>()> app_factory,
                   AgileMLConfig base_config, ProfileEstimatorConfig config);

  // Runs all probes and assembles the profile.
  AppProfile Estimate();

  // Individual probes (also used by tests).
  double EstimatePhi();
  SimDuration EstimateSigma();
  SimDuration EstimateLambda();

 private:
  std::unique_ptr<AgileMLRuntime> MakeRuntime(std::unique_ptr<MLApp>& app, int reliable,
                                              int transient);
  double SteadyTimePerClock(AgileMLRuntime& runtime);

  std::function<std::unique_ptr<MLApp>()> app_factory_;
  AgileMLConfig base_config_;
  ProfileEstimatorConfig config_;
};

}  // namespace proteus

#endif  // SRC_PROTEUS_PROFILE_ESTIMATOR_H_
