#include "src/proteus/job_queue.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "src/common/logging.h"

namespace proteus {

namespace {
constexpr WorkUnits kWorkEpsilon = 1e-6;
constexpr SimDuration kInstant = 1.0;

// Cost attributable to the window [begin, end): every billing hour is
// charged pro-rata to the windows that overlap it; hours refunded by an
// eviction cost nothing (matches §6.3 accounting, generalized from one
// job to a sequence).
Money WindowCost(const SpotMarket& market, const Allocation& alloc, SimTime begin, SimTime end) {
  const SimTime usage_end = std::min(end, alloc.EndOrInfinity());
  if (usage_end <= alloc.start || usage_end <= begin) {
    return 0.0;
  }
  const bool evicted = alloc.state == AllocationState::kEvicted;
  const PriceSeries* series =
      alloc.kind == AllocationKind::kSpot ? &market.traces().Get(alloc.market) : nullptr;
  const Money od_rate = market.catalog().Get(alloc.market.instance_type).on_demand_price;
  Money cost = 0.0;
  for (SimTime hour_start = alloc.start; hour_start < usage_end; hour_start += kHour) {
    const SimTime hour_end = hour_start + kHour;
    if (hour_end <= begin) {
      continue;
    }
    if (evicted && hour_end > alloc.end) {
      continue;  // The refunded (in-progress-at-eviction) hour.
    }
    const Money rate = series != nullptr ? series->PriceAt(hour_start) : od_rate;
    const double overlap =
        std::max(0.0, std::min(hour_end, end) - std::max(hour_start, begin)) / kHour;
    cost += rate * alloc.count * overlap;
  }
  return cost;
}
}  // namespace

JobQueueSimulator::JobQueueSimulator(const InstanceTypeCatalog* catalog, const TraceStore* traces,
                                     const EvictionModel* estimator)
    : catalog_(catalog), traces_(traces), estimator_(estimator) {
  PROTEUS_CHECK(catalog_ != nullptr);
  PROTEUS_CHECK(traces_ != nullptr);
  PROTEUS_CHECK(estimator_ != nullptr);
}

JobQueueResult JobQueueSimulator::Run(const std::vector<QueuedJob>& jobs,
                                      const SchemeConfig& config, SimTime start) const {
  if (jobs.empty()) {
    return {};  // Nothing queued: no footprint, no cost, zero makespan.
  }
  SpotMarket market(*catalog_, *traces_);
  BidBrain bidbrain(catalog_, traces_, estimator_, config.bidbrain);
  const AppProfile& profile = config.agileml_profile;
  const std::string zone0 = traces_->Keys().front().zone;

  JobQueueResult result;
  SimTime t = start;
  std::vector<AllocationId> live;
  std::set<AllocationId> scheduled_termination;
  std::vector<std::pair<SimTime, AllocationId>> terminations;
  SimTime paused_until = t;
  SimTime next_decision = t;

  // One reliable on-demand allocation for the whole queue.
  const AllocationId od = market.RequestOnDemand({zone0, config.on_demand_type},
                                                 config.on_demand_count, t);
  live.push_back(od);

  auto work_rate = [&]() {
    double vcpus = 0.0;
    for (const AllocationId id : live) {
      const Allocation& alloc = market.Get(id);
      if (alloc.kind == AllocationKind::kSpot) {
        vcpus += alloc.count * catalog_->Get(alloc.market.instance_type).vcpus;
      }
    }
    return vcpus * profile.phi / kHour;
  };

  for (const QueuedJob& queued : jobs) {
    QueuedJobResult job_result;
    job_result.name = queued.name;
    const SimTime job_start = t;
    WorkUnits done = 0.0;
    const SimTime hard_end = t + config.max_runtime;

    while (done + kWorkEpsilon < queued.spec.total_work && t < hard_end) {
      const double rate = work_rate();
      SimTime next = std::min(hard_end, next_decision);
      for (const AllocationId id : live) {
        const auto& ev = market.Get(id).eviction_time;
        if (ev.has_value() && market.Get(id).running()) {
          next = std::min(next, std::max(*ev, t + kInstant));
        }
      }
      for (const auto& [when, unused] : terminations) {
        next = std::min(next, std::max(when, t + kInstant));
      }
      if (paused_until > t) {
        next = std::min(next, paused_until);
      } else if (rate > 0.0) {
        next = std::min(next, t + (queued.spec.total_work - done) / rate);
      }
      next = std::max(next, t + kInstant);
      const SimTime active_from = std::max(t, paused_until);
      if (next > active_from) {
        done += rate * (next - active_from);
      }
      t = next;
      if (done + kWorkEpsilon >= queued.spec.total_work) {
        break;
      }

      // Evictions.
      bool evicted_any = false;
      for (auto it = live.begin(); it != live.end();) {
        const Allocation& alloc = market.Get(*it);
        if (alloc.kind == AllocationKind::kSpot && alloc.eviction_time.has_value() &&
            *alloc.eviction_time <= t && alloc.running()) {
          market.MarkEvicted(*it);
          it = live.erase(it);
          ++job_result.evictions;
          evicted_any = true;
        } else {
          ++it;
        }
      }
      if (evicted_any) {
        paused_until = std::max(paused_until, t + profile.lambda);
        next_decision = t;
      }

      // Scheduled terminations (renewal decisions).
      for (auto it = terminations.begin(); it != terminations.end();) {
        if (it->first <= t) {
          if (market.Get(it->second).running()) {
            market.Terminate(it->second, t);
            live.erase(std::remove(live.begin(), live.end(), it->second), live.end());
          }
          it = terminations.erase(it);
        } else {
          ++it;
        }
      }

      // BidBrain decision point.
      if (t >= next_decision) {
        std::vector<LiveAllocation> view;
        for (const AllocationId id : live) {
          const Allocation& alloc = market.Get(id);
          view.push_back({alloc.id, alloc.market, alloc.count, alloc.bid,
                          alloc.kind == AllocationKind::kOnDemand, alloc.start});
        }
        for (const BidAction& action : bidbrain.Decide(t, view)) {
          if (action.kind == BidAction::Kind::kAcquire) {
            const auto id = market.RequestSpot(action.market, action.count, action.bid, t);
            if (id.has_value()) {
              live.push_back(*id);
              paused_until = std::max(paused_until, t + profile.sigma);
            }
          } else if (scheduled_termination.insert(action.target).second) {
            terminations.emplace_back(market.Get(action.target).HourEnd(t) - 1.0,
                                      action.target);
          }
        }
        next_decision = t + config.decision_period;
      }
    }

    job_result.completed = done + kWorkEpsilon >= queued.spec.total_work;
    job_result.runtime = t - job_start;
    for (const auto& alloc : market.allocations()) {
      job_result.cost += WindowCost(market, alloc, job_start, t);
    }
    result.jobs.push_back(job_result);
  }

  // --- Queue drained: shutdown policy (§5) ---
  const SimTime queue_end = t;
  market.Terminate(od, queue_end);  // On-demand released immediately.
  // Spot allocations are held to the end of their billing hours hoping
  // AWS evicts them first (making the final hour free).
  for (const AllocationId id : live) {
    const Allocation& alloc = market.Get(id);
    if (alloc.kind != AllocationKind::kSpot || !alloc.running()) {
      continue;
    }
    const SimTime hour_end = alloc.HourEnd(queue_end);
    if (alloc.eviction_time.has_value() && *alloc.eviction_time < hour_end) {
      market.MarkEvicted(id);
      result.shutdown_refunds +=
          market.traces().Get(alloc.market).PriceAt(alloc.HourStart(queue_end)) * alloc.count;
    } else {
      market.Terminate(id, hour_end - 1.0);
    }
  }

  const BillingBreakdown total = market.TotalBill(queue_end + kDay);
  result.total_cost = total.charged;
  result.makespan = queue_end - start;
  return result;
}

}  // namespace proteus
