#include "src/proteus/proteus_runtime.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/logging.h"

namespace proteus {

ProteusRuntime::ProteusRuntime(MLApp* app, const InstanceTypeCatalog* catalog,
                               const TraceStore* traces, const EvictionModel* estimator,
                               ProteusConfig config, SimTime start)
    : app_(app),
      catalog_(catalog),
      config_(std::move(config)),
      market_(*catalog, *traces),
      bidbrain_(catalog, traces, estimator, config_.bidbrain),
      rng_(config_.seed),
      start_(start),
      now_(start),
      next_decision_(start) {
  PROTEUS_CHECK(app_ != nullptr);
  if (config_.silent_failure_fraction > 0) {
    PROTEUS_CHECK(config_.agileml.detector.enabled)
        << "silent failures need the heartbeat detector to be caught";
  }
  if (config_.serverless_target > 0) {
    PROTEUS_CHECK(config_.agileml.detector.enabled)
        << "the serverless tier gives zero eviction warning; only the "
           "heartbeat detector can catch its losses";
    serverless_ = std::make_unique<ServerlessTier>(config_.serverless);
  }
  if (config_.on_demand_zone.empty()) {
    config_.on_demand_zone = traces->Keys().front().zone;
  }
  // Reliable tier: on-demand instances acquired up front, never released.
  const InstanceType& od_type = catalog_->Get(config_.on_demand_type);
  on_demand_allocation_ = market_.RequestOnDemand(
      {config_.on_demand_zone, config_.on_demand_type}, config_.on_demand_count, now_);
  std::vector<NodeInfo> reliable;
  for (int i = 0; i < config_.on_demand_count; ++i) {
    reliable.push_back({next_node_id_++, Tier::kReliable, od_type.vcpus, on_demand_allocation_});
  }
  agileml_ = std::make_unique<AgileMLRuntime>(app_, config_.agileml, reliable);
  // "Proteus connects AgileML to BidBrain via a ZMQ message that
  // specifies the application characteristics" (§5).
  controller_channel_.Send(Message(AppCharacteristicsMsg{
      config_.bidbrain.app.phi, config_.bidbrain.app.sigma, config_.bidbrain.app.lambda,
      static_cast<double>(od_type.vcpus)}));
}

ProteusRuntime::~ProteusRuntime() = default;

void ProteusRuntime::SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
  total_cost_gauge_ = nullptr;
  acquisitions_counter_ = nullptr;
  evictions_counter_ = nullptr;
  failures_counter_ = nullptr;
  aborted_counter_ = nullptr;
  if (metrics != nullptr) {
    total_cost_gauge_ = metrics->GetGauge("proteus.cost.dollars");
    acquisitions_counter_ = metrics->GetCounter("proteus.allocations", {{"event", "acquired"}});
    evictions_counter_ = metrics->GetCounter("proteus.allocations", {{"event", "evicted"}});
    failures_counter_ = metrics->GetCounter("proteus.allocations", {{"event", "failed"}});
    aborted_counter_ = metrics->GetCounter("proteus.allocations", {{"event", "aborted"}});
  }
  agileml_->SetObservability(tracer, metrics);
  bidbrain_.SetObservability(tracer, metrics);
  api_channel_.SetObservability(metrics, "api");
  controller_channel_.SetObservability(metrics, "controller");
  UpdateCostGauges();
}

void ProteusRuntime::SetLedger(obs::EventLedger* ledger) {
  ledger_ = ledger;
  agileml_->SetLedger(ledger);
  api_channel_.SetLedger(ledger, "api");
  controller_channel_.SetLedger(ledger, "controller");
}

void ProteusRuntime::RecordAllocEvent(const char* event, const TrackedAllocation& tracked,
                                      obs::TraceArgs extra) {
  if (tracer_ == nullptr && ledger_ == nullptr) {
    return;
  }
  const Allocation& alloc = market_.Get(tracked.id);
  obs::TraceArgs args = {{"alloc", static_cast<std::int64_t>(tracked.id)},
                         {"market", alloc.market.zone + "/" + alloc.market.instance_type},
                         {"count", static_cast<std::int64_t>(alloc.count)}};
  for (auto& kv : extra) {
    args.push_back(std::move(kv));
  }
  if (ledger_ != nullptr) {
    ledger_->Record(std::string("alloc.") + event, "proteus", now_, args);
  }
  if (tracer_ != nullptr) {
    tracer_->InstantAt(now_, std::string("alloc.") + event, "proteus", std::move(args));
  }
}

void ProteusRuntime::UpdateCostGauges() {
  const Money serverless_cost =
      serverless_ != nullptr ? serverless_->TotalBill(now_) : 0.0;
  if (ledger_ != nullptr || tracer_ != nullptr) {
    const Money total = ComputeTotalJobBill(market_, now_).cost + serverless_cost;
    if (ledger_ != nullptr) {
      ledger_->Record("cost.sample", "proteus", now_, {{"dollars", total}});
    }
    if (tracer_ != nullptr) {
      tracer_->CounterAt(now_, "cost_dollars", "proteus", total);
    }
  }
  if (metrics_ == nullptr) {
    return;
  }
  if (total_cost_gauge_ != nullptr) {
    total_cost_gauge_->Set(ComputeTotalJobBill(market_, now_).cost + serverless_cost);
  }
  // Per-tier cost attribution (the tab_* benches and proteus_analyze
  // read these to attribute damage and spend by reliability tier).
  const Money reliable_cost = ComputeJobBill(market_, on_demand_allocation_, now_).cost;
  const Money transient_cost = ComputeTotalJobBill(market_, now_).cost - reliable_cost;
  metrics_->GetGauge("proteus.tier.cost", {{"tier", "reliable"}})->Set(reliable_cost);
  metrics_->GetGauge("proteus.tier.cost", {{"tier", "transient"}})->Set(transient_cost);
  metrics_->GetGauge("proteus.tier.cost", {{"tier", "serverless"}})->Set(serverless_cost);
  // Per-allocation accumulated cost (the reliable tier is one gauge
  // too). Ended allocations keep their final bill; ids restart at 0
  // every run, so the label cardinality stays bounded.
  for (const Allocation& alloc : market_.allocations()) {
    obs::Gauge* g =
        metrics_->GetGauge("proteus.alloc.cost", {{"alloc", std::to_string(alloc.id)}});
    g->Set(ComputeJobBill(market_, alloc.id, now_).cost);
  }
}

std::vector<LiveAllocation> ProteusRuntime::LiveView() const {
  std::vector<LiveAllocation> view;
  const Allocation& od = market_.Get(on_demand_allocation_);
  view.push_back({od.id, od.market, od.count, od.bid, /*on_demand=*/true, od.start});
  for (const auto& [id, tracked] : live_) {
    const Allocation& alloc = market_.Get(id);
    if (alloc.running() && !tracked.terminating) {
      view.push_back({alloc.id, alloc.market, alloc.count, alloc.bid, false, alloc.start});
    }
  }
  return view;
}

void ProteusRuntime::RunDecisionPoint() {
  for (const BidAction& action : bidbrain_.Decide(now_, LiveView())) {
    if (action.kind == BidAction::Kind::kAcquire) {
      api_channel_.Send(Message(AllocationRequestMsg{
          action.market.zone, action.market.instance_type, action.count, action.bid}));
      const auto id = market_.RequestSpot(action.market, action.count, action.bid, now_);
      if (!id.has_value()) {
        continue;  // Price moved above the bid; retry next decision.
      }
      const InstanceType& type = catalog_->Get(action.market.instance_type);
      TrackedAllocation tracked;
      tracked.id = *id;
      std::vector<NodeInfo> nodes;
      for (int i = 0; i < action.count; ++i) {
        const NodeId node = next_node_id_++;
        tracked.nodes.push_back(node);
        nodes.push_back({node, Tier::kTransient, type.vcpus, *id});
      }
      // BidBrain forwards the grant (instance "IP addresses and sizes",
      // §5) to the elasticity controller.
      controller_channel_.Send(
          Message(AllocationGrantMsg{*id, tracked.nodes, type.vcpus}));
      agileml_->AddNodes(nodes);  // Background preload, then join (§3.3).
      const AllocationId alloc_id = *id;
      live_[alloc_id] = std::move(tracked);
      ++acquisitions_;
      if (acquisitions_counter_ != nullptr) {
        acquisitions_counter_->Increment();
      }
      RecordAllocEvent("bid", live_[alloc_id], {{"bid", action.bid}});
    } else {
      auto it = live_.find(action.target);
      if (it != live_.end() && !it->second.terminating) {
        it->second.terminating = true;
        it->second.terminate_at = market_.Get(action.target).HourEnd(now_) - 1.0;
        RecordAllocEvent("terminate.scheduled", it->second,
                         {{"at", it->second.terminate_at}});
      }
    }
  }
  if (serverless_ != nullptr) {
    RunServerlessAcquisition();
  }
}

void ProteusRuntime::RecordServerlessEvent(const char* event,
                                           const TrackedServerless& tracked,
                                           obs::TraceArgs extra) {
  if (tracer_ == nullptr && ledger_ == nullptr) {
    return;
  }
  const ServerlessAllocation& alloc = serverless_->Get(tracked.id);
  obs::TraceArgs args = {{"alloc", static_cast<std::int64_t>(tracked.id)},
                         {"market", std::string("serverless")},
                         {"count", static_cast<std::int64_t>(alloc.count)}};
  for (auto& kv : extra) {
    args.push_back(std::move(kv));
  }
  if (ledger_ != nullptr) {
    ledger_->Record(std::string("serverless.") + event, "proteus", now_, args);
  }
  if (tracer_ != nullptr) {
    tracer_->InstantAt(now_, std::string("serverless.") + event, "proteus",
                       std::move(args));
  }
}

void ProteusRuntime::RunServerlessAcquisition() {
  // Enrolled = every node on a live serverless allocation that has not
  // yet been revoked; pending = the subset still preloading.
  int enrolled = 0;
  int pending = 0;
  for (const auto& [id, tracked] : serverless_live_) {
    if (tracked.revoked) {
      continue;
    }
    for (const NodeId node : tracked.nodes) {
      if (agileml_->IsReadyNode(node)) {
        ++enrolled;
      } else if (agileml_->IsPreparingNode(node)) {
        ++enrolled;
        ++pending;
      }
    }
  }
  int want = config_.serverless_target - enrolled;
  if (want <= 0) {
    return;
  }
  // The TierGuard bounds how much of the worker pool the zero-warning
  // tier may hold; never admit past the exposure bound.
  want = std::min(
      want, agileml_->tier_guard().AdmissionHeadroom(agileml_->ReadyTierCounts(), pending));
  const int chunk = std::max(1, config_.serverless_nodes_per_allocation);
  while (want > 0) {
    const int count = std::min(want, chunk);
    const auto id = serverless_->Request(count, now_);
    if (!id.has_value()) {
      break;  // Pool capacity squeezed below our claim; retry next decision.
    }
    TrackedServerless tracked;
    tracked.id = *id;
    std::vector<NodeInfo> nodes;
    for (int i = 0; i < count; ++i) {
      const NodeId node = next_node_id_++;
      tracked.nodes.push_back(node);
      // Burstable slots are small: two vcpus apiece. The allocation id
      // lives in the serverless id space, not the market's.
      nodes.push_back({node, Tier::kServerless, 2, kInvalidAllocation});
    }
    controller_channel_.Send(Message(AllocationGrantMsg{*id, tracked.nodes, 2}));
    agileml_->AddNodes(nodes);  // Background preload, then join (§3.3).
    const AllocationId alloc_id = *id;
    serverless_live_[alloc_id] = std::move(tracked);
    ++acquisitions_;
    ++serverless_acquisitions_;
    if (acquisitions_counter_ != nullptr) {
      acquisitions_counter_->Increment();
    }
    RecordServerlessEvent("acquired", serverless_live_[alloc_id]);
    want -= count;
  }
}

void ProteusRuntime::ProcessServerlessEventsUntil(SimTime until) {
  if (serverless_ == nullptr) {
    return;
  }
  for (auto it = serverless_live_.begin(); it != serverless_live_.end();) {
    TrackedServerless& tracked = it->second;
    const ServerlessAllocation& alloc = serverless_->Get(tracked.id);
    bool erase = false;
    if (alloc.running() && !tracked.revoked && alloc.revocation_time <= until) {
      // Zero warning, always: the provider reclaims the slots with no
      // notice of any kind. There is no warned path here by design —
      // every serverless loss flows through the silent-failure →
      // detector-confirmed pipeline.
      serverless_->MarkRevoked(tracked.id);
      std::vector<NodeId> ready;
      std::vector<NodeId> preloading;
      for (const NodeId node : tracked.nodes) {
        (agileml_->IsReadyNode(node) ? ready : preloading).push_back(node);
      }
      if (ready.empty()) {
        // Never incorporated: the preload is simply abandoned.
        agileml_->Evict(tracked.nodes);
        ++aborted_preloads_;
        if (aborted_counter_ != nullptr) {
          aborted_counter_->Increment();
        }
        RecordServerlessEvent("aborted", tracked,
                              {{"cause", std::string(ServerlessRevocationCauseName(
                                    alloc.revocation_cause))}});
        erase = true;
      } else {
        if (!preloading.empty()) {
          agileml_->Evict(preloading);  // Discards the still-preparing nodes.
        }
        for (const NodeId node : ready) {
          agileml_->SetNodeRevoked(node);
        }
        tracked.revoked = true;
        RecordServerlessEvent("revoked.silent", tracked,
                              {{"cause", std::string(ServerlessRevocationCauseName(
                                    alloc.revocation_cause))}});
      }
      next_decision_ = until;  // React immediately (§5).
    }
    it = erase ? serverless_live_.erase(it) : ++it;
  }
}

void ProteusRuntime::HandleEviction(TrackedAllocation& tracked, bool warned) {
  // "Upon receiving an eviction notification, BidBrain translates it to
  // the ids of the resources ... and notifies AgileML's elasticity
  // controller" (§5).
  controller_channel_.Send(Message(EvictionNoticeMsg{
      tracked.id, tracked.nodes, warned ? kEvictionWarning : 0.0}));
  // An allocation revoked while all of its nodes are still preloading
  // (never incorporated) is neither an eviction nor a failure: no roles
  // move, no clocks are lost, and the preload is simply abandoned.
  bool any_incorporated = false;
  for (const NodeId id : tracked.nodes) {
    if (agileml_->IsReadyNode(id)) {
      any_incorporated = true;
      break;
    }
  }
  if (!any_incorporated) {
    agileml_->Evict(tracked.nodes);  // Discards the preparing nodes.
    ++aborted_preloads_;
    if (aborted_counter_ != nullptr) {
      aborted_counter_->Increment();
    }
    RecordAllocEvent("aborted", tracked);
    PROTEUS_LOG(Debug) << "allocation " << tracked.id
                       << " revoked before incorporation; preload abandoned";
    return;
  }
  if (warned) {
    agileml_->Evict(tracked.nodes);
    ++evictions_;
    if (evictions_counter_ != nullptr) {
      evictions_counter_->Increment();
    }
    RecordAllocEvent("evicted", tracked);
  } else {
    const int lost = agileml_->Fail(tracked.nodes);
    transient_lost_clocks_ += lost;
    ++failures_;
    if (failures_counter_ != nullptr) {
      failures_counter_->Increment();
    }
    RecordAllocEvent("failed", tracked, {{"lost_clocks", static_cast<std::int64_t>(lost)}});
    PROTEUS_LOG(Debug) << "effective failure: lost " << lost << " clocks";
  }
}

void ProteusRuntime::ProcessMarketEventsUntil(SimTime until) {
  // Warning polls happen every warning_poll seconds; with sub-minute
  // training clocks, checking once per event window is equivalent to the
  // paper's 5-second poll — warnings give two minutes of slack.
  for (auto it = live_.begin(); it != live_.end();) {
    TrackedAllocation& tracked = it->second;
    const Allocation& alloc = market_.Get(tracked.id);
    bool erase = false;
    if (alloc.running() && tracked.terminating && tracked.terminate_at <= until) {
      // Planned termination just before the billing hour renews.
      market_.Terminate(tracked.id, std::max(now_, tracked.terminate_at));
      agileml_->Evict(tracked.nodes);
      RecordAllocEvent("terminated", tracked);
      erase = true;
    } else if (alloc.running() && alloc.eviction_time.has_value()) {
      const SimTime warning = std::max(alloc.start, *alloc.eviction_time - kEvictionWarning);
      if (!tracked.warned && warning <= until &&
          rng_.Bernoulli(1.0 - config_.effective_failure_fraction)) {
        // Warning observed at the next poll: graceful scale-down now.
        tracked.warned = true;
        market_.MarkEvicted(tracked.id);
        HandleEviction(tracked, /*warned=*/true);
        erase = true;
        next_decision_ = until;  // React immediately (§5).
      } else if (*alloc.eviction_time <= until) {
        // The warning was missed (or suppressed): effective failure.
        market_.MarkEvicted(tracked.id);
        bool all_ready = !tracked.nodes.empty();
        for (const NodeId node : tracked.nodes) {
          all_ready = all_ready && agileml_->IsReadyNode(node);
        }
        if (config_.silent_failure_fraction > 0 &&
            agileml_->failure_detector().config().enabled && all_ready &&
            rng_.Bernoulli(config_.silent_failure_fraction)) {
          // Silent termination: no notice is ever sent. The nodes stop
          // heartbeating (compute keeps running against dead state) and
          // the allocation stays tracked until the detector confirms
          // the death inside a later RunClock (see Step()).
          for (const NodeId node : tracked.nodes) {
            agileml_->SetNodeSilent(node, true);
          }
          tracked.silenced = true;
          RecordAllocEvent("failed.silent", tracked);
        } else {
          HandleEviction(tracked, /*warned=*/false);
          erase = true;
        }
        next_decision_ = until;
      }
    }
    it = erase ? live_.erase(it) : ++it;
  }
}

void ProteusRuntime::Step() {
  if (now_ >= next_decision_) {
    RunDecisionPoint();
    next_decision_ = now_ + config_.decision_period;
  }
  const int lost_before = agileml_->lost_clocks_total();
  const IterationReport report = agileml_->RunClock();
  bool serverless_confirmed = false;
  bool transient_confirmed = false;
  if (!report.confirmed_dead.empty()) {
    const auto confirmed_contains = [&report](NodeId node) {
      return std::find(report.confirmed_dead.begin(), report.confirmed_dead.end(),
                       node) != report.confirmed_dead.end();
    };
    // Zero-warning serverless revocations resolve here: the detector
    // confirmed the revoked nodes dead and the runtime rolled back.
    for (auto it = serverless_live_.begin(); it != serverless_live_.end();) {
      TrackedServerless& tracked = it->second;
      if (tracked.revoked &&
          std::any_of(tracked.nodes.begin(), tracked.nodes.end(), confirmed_contains)) {
        serverless_confirmed = true;
        ++failures_;
        ++silent_failures_;
        ++serverless_losses_;
        if (failures_counter_ != nullptr) {
          failures_counter_->Increment();
        }
        RecordServerlessEvent("failed.confirmed", tracked,
                              {{"clock", static_cast<std::int64_t>(agileml_->clock())}});
        it = serverless_live_.erase(it);
      } else {
        ++it;
      }
    }
    // The detector confirmed silenced nodes dead and the runtime already
    // rolled back; account the allocation as a (silent) failure now.
    for (auto it = live_.begin(); it != live_.end();) {
      TrackedAllocation& tracked = it->second;
      const bool confirmed =
          tracked.silenced &&
          std::any_of(tracked.nodes.begin(), tracked.nodes.end(),
                      [&report](NodeId node) {
                        return std::find(report.confirmed_dead.begin(),
                                         report.confirmed_dead.end(),
                                         node) != report.confirmed_dead.end();
                      });
      if (confirmed) {
        transient_confirmed = true;
        ++failures_;
        ++silent_failures_;
        if (failures_counter_ != nullptr) {
          failures_counter_->Increment();
        }
        RecordAllocEvent("failed.confirmed", tracked,
                         {{"clock", static_cast<std::int64_t>(agileml_->clock())}});
        it = live_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Attribute the clocks this confirmation's rollback cost to the tier
  // whose loss triggered it (serverless wins a mixed batch: the rollback
  // depth is set by the zero-warning victims' unconfirmed window).
  const int lost_delta = agileml_->lost_clocks_total() - lost_before;
  if (lost_delta > 0) {
    if (serverless_confirmed) {
      serverless_lost_clocks_ += lost_delta;
    } else if (transient_confirmed) {
      transient_lost_clocks_ += lost_delta;
    }
  }
  if (config_.checkpoint_every > 0 &&
      agileml_->clock() % config_.checkpoint_every == 0) {
    agileml_->CheckpointReliable();
  }
  const SimTime clock_end = now_ + report.duration;
  ProcessMarketEventsUntil(clock_end);
  ProcessServerlessEventsUntil(clock_end);
  now_ = clock_end;
  // Preloads that completed during this clock turn the allocation active.
  for (auto& [id, tracked] : live_) {
    if (tracked.active) {
      continue;
    }
    for (const NodeId node : tracked.nodes) {
      if (agileml_->IsReadyNode(node)) {
        tracked.active = true;
        RecordAllocEvent("active", tracked,
                         {{"clock", static_cast<std::int64_t>(agileml_->clock())}});
        break;
      }
    }
  }
  for (auto& [id, tracked] : serverless_live_) {
    if (tracked.active || tracked.revoked) {
      continue;
    }
    for (const NodeId node : tracked.nodes) {
      if (agileml_->IsReadyNode(node)) {
        tracked.active = true;
        RecordServerlessEvent("active", tracked,
                              {{"clock", static_cast<std::int64_t>(agileml_->clock())}});
        break;
      }
    }
  }
  UpdateCostGauges();
}

ProteusRunSummary ProteusRuntime::Train(int target_clock) {
  ProteusRunSummary summary;
  int safety = target_clock * 10 + 100;  // Rollbacks re-run clocks; bound the loop.
  while (agileml_->clock() < target_clock && safety-- > 0) {
    Step();
    if (config_.objective_every > 0 && agileml_->clock() % config_.objective_every == 0) {
      summary.objective_trace.push_back(agileml_->ComputeObjective());
    }
  }
  summary.clocks = static_cast<int>(agileml_->clock());
  summary.runtime = now_ - start_;
  summary.bill = ComputeTotalJobBill(market_, now_);
  // Per-tier breakdown: the market bill splits reliable (the up-front
  // on-demand allocation) from transient (everything else); serverless
  // slots bill outside the market and fold into the total.
  summary.tier_reliable.cost = ComputeJobBill(market_, on_demand_allocation_, now_).cost;
  summary.tier_transient.cost = summary.bill.cost - summary.tier_reliable.cost;
  summary.tier_transient.evictions = evictions_ + (failures_ - serverless_losses_);
  summary.tier_transient.warned_losses = evictions_;
  summary.tier_transient.silent_losses = silent_failures_ - serverless_losses_;
  summary.tier_transient.lost_clocks = transient_lost_clocks_;
  if (serverless_ != nullptr) {
    summary.tier_serverless.cost = serverless_->TotalBill(now_);
    summary.bill.cost += summary.tier_serverless.cost;
    summary.tier_serverless.evictions = serverless_losses_;
    summary.tier_serverless.silent_losses = serverless_losses_;  // All of them, by design.
    summary.tier_serverless.lost_clocks = serverless_lost_clocks_;
  }
  summary.serverless_acquisitions = serverless_acquisitions_;
  summary.evictions = evictions_;
  summary.failures = failures_;
  summary.silent_failures = silent_failures_;
  summary.acquisitions = acquisitions_;
  summary.aborted_preloads = aborted_preloads_;
  summary.lost_clocks = agileml_->lost_clocks_total();
  summary.final_objective = agileml_->ComputeObjective();
  summary.model_shards = agileml_->model().shards();
  summary.shard_imbalance = agileml_->model().ShardImbalance();
  summary.checkpoint_bytes_written = agileml_->checkpoint_bytes_written_total();
  summary.checkpoint_bytes_restored = agileml_->checkpoint_bytes_restored_total();
  summary.restore_clocks_lost = agileml_->restore_clocks_lost_total();
  return summary;
}

ProteusStatus ProteusRuntime::Status() const {
  ProteusStatus status;
  status.clock = agileml_->clock();
  status.now = now_;
  status.virtual_time = agileml_->total_time();
  const TierCounts counts = agileml_->ReadyTierCounts();
  status.transient_nodes = counts.transient + agileml_->PreparingCount();
  int serverless_preparing = 0;
  for (const auto& [id, tracked] : serverless_live_) {
    for (const NodeId node : tracked.nodes) {
      if (agileml_->IsPreparingNode(node)) {
        ++serverless_preparing;
      }
    }
  }
  status.serverless_nodes = counts.serverless + serverless_preparing;
  status.transient_nodes -= serverless_preparing;  // PreparingCount() spans tiers.
  status.evictions = evictions_;
  status.failures = failures_;
  status.silent_failures = silent_failures_;
  status.acquisitions = acquisitions_;
  status.aborted_preloads = aborted_preloads_;
  status.lost_clocks = agileml_->lost_clocks_total();
  status.cost_so_far = ComputeTotalJobBill(market_, now_).cost;
  status.model_shards = agileml_->model().shards();
  status.shard_imbalance = agileml_->model().ShardImbalance();
  return status;
}

}  // namespace proteus
