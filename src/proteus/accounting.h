// Job-level cost accounting (§6.3).
//
// The paper reports average cost per job and does "not charge a given job
// for any minutes that remained in a job's final billing hours" (the
// leftover is used by the next job in the sequence). So, per allocation:
//  - full billing hours before the job ends are charged at the hourly
//    price in effect at each hour start;
//  - an hour cut short by an AWS eviction is free (the refund);
//  - the hour in progress when the job completes is charged pro-rata.
#ifndef SRC_PROTEUS_ACCOUNTING_H_
#define SRC_PROTEUS_ACCOUNTING_H_

#include "src/common/types.h"
#include "src/market/spot_market.h"

namespace proteus {

struct JobBill {
  Money cost = 0.0;
  double on_demand_hours = 0.0;  // Machine-hours on on-demand instances.
  double spot_paid_hours = 0.0;  // Machine-hours on paid spot time.
  double free_hours = 0.0;       // Machine-hours refunded by evictions.

  double TotalHours() const { return on_demand_hours + spot_paid_hours + free_hours; }
  void Accumulate(const JobBill& other);
};

// Bill for one allocation with the job ending at `job_end`.
JobBill ComputeJobBill(const SpotMarket& market, AllocationId id, SimTime job_end);

// Aggregate over every allocation in the market.
JobBill ComputeTotalJobBill(const SpotMarket& market, SimTime job_end);

}  // namespace proteus

#endif  // SRC_PROTEUS_ACCOUNTING_H_
