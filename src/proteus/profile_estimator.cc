#include "src/proteus/profile_estimator.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace proteus {

ProfileEstimator::ProfileEstimator(std::function<std::unique_ptr<MLApp>()> app_factory,
                                   AgileMLConfig base_config, ProfileEstimatorConfig config)
    : app_factory_(std::move(app_factory)), base_config_(base_config), config_(config) {
  PROTEUS_CHECK(app_factory_ != nullptr);
  PROTEUS_CHECK_GT(config_.scaled_nodes, config_.base_nodes);
}

std::unique_ptr<AgileMLRuntime> ProfileEstimator::MakeRuntime(std::unique_ptr<MLApp>& app,
                                                              int reliable, int transient) {
  std::vector<NodeInfo> nodes;
  NodeId id = 0;
  for (int i = 0; i < reliable; ++i) {
    nodes.push_back({id++, Tier::kReliable, config_.cores_per_node, kInvalidAllocation});
  }
  for (int i = 0; i < transient; ++i) {
    nodes.push_back({id++, Tier::kTransient, config_.cores_per_node, kInvalidAllocation});
  }
  return std::make_unique<AgileMLRuntime>(app.get(), base_config_, nodes);
}

double ProfileEstimator::SteadyTimePerClock(AgileMLRuntime& runtime) {
  runtime.RunClocks(config_.warmup_clocks);
  double total = 0.0;
  for (int i = 0; i < config_.measure_clocks; ++i) {
    total += runtime.RunClock().duration;
  }
  return total / config_.measure_clocks;
}

double ProfileEstimator::EstimatePhi() {
  auto app_small = app_factory_();
  auto small = MakeRuntime(app_small, 1, config_.base_nodes - 1);
  const double t_small = SteadyTimePerClock(*small);

  auto app_large = app_factory_();
  auto large = MakeRuntime(app_large, 1, config_.scaled_nodes - 1);
  const double t_large = SteadyTimePerClock(*large);

  const double ideal_speedup =
      static_cast<double>(config_.scaled_nodes) / config_.base_nodes;
  const double speedup = t_small / t_large;
  // First-order scalability coefficient: fraction of ideal achieved.
  return std::clamp(speedup / ideal_speedup, 0.05, 1.0);
}

SimDuration ProfileEstimator::EstimateSigma() {
  auto app = app_factory_();
  auto runtime = MakeRuntime(app, 1, config_.base_nodes - 1);
  SteadyTimePerClock(*runtime);

  std::vector<NodeInfo> extra;
  for (int i = 0; i < config_.churn_nodes; ++i) {
    extra.push_back(
        {1000 + i, Tier::kTransient, config_.cores_per_node, kInvalidAllocation});
  }
  runtime->AddNodes(extra);
  // Integrate the overhead relative to the eventual steady state: run
  // until incorporation finishes plus a settling clock.
  SimDuration during = 0.0;
  int clocks = 0;
  while (runtime->PreparingCount() > 0 && clocks < 200) {
    during += runtime->RunClock().duration;
    ++clocks;
  }
  during += runtime->RunClock().duration;  // Transition clock.
  ++clocks;
  const double steady_after = SteadyTimePerClock(*runtime);
  return std::max(0.0, during - clocks * steady_after);
}

SimDuration ProfileEstimator::EstimateLambda() {
  auto app = app_factory_();
  const int transient = config_.base_nodes - 1 + config_.churn_nodes;
  auto runtime = MakeRuntime(app, 1, transient);
  SteadyTimePerClock(*runtime);

  // Evict the churn nodes (warned) and measure the recovery blip.
  std::vector<NodeId> evictees;
  for (const auto& node : runtime->nodes()) {
    if (!node.reliable() && evictees.size() < static_cast<std::size_t>(config_.churn_nodes)) {
      evictees.push_back(node.id);
    }
  }
  runtime->Evict(evictees);
  const double blip = runtime->RunClock().duration;
  const double steady_after = SteadyTimePerClock(*runtime);
  return std::max(0.0, blip - steady_after);
}

AppProfile ProfileEstimator::Estimate() {
  AppProfile profile;
  profile.phi = EstimatePhi();
  profile.sigma = EstimateSigma();
  profile.lambda = EstimateLambda();
  return profile;
}

}  // namespace proteus
