#include "src/proteus/job_simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "src/common/logging.h"

namespace proteus {

namespace {
constexpr WorkUnits kWorkEpsilon = 1e-6;
constexpr SimDuration kInstant = 1.0;  // Minimum event spacing.

// Terminates whatever is still running (accounting pro-rates the final
// hour) and fills the total and per-allocation bills.
void FinalizeBill(SpotMarket& market, SimTime job_end, JobResult& result) {
  for (const Allocation& alloc : market.allocations()) {
    if (alloc.running()) {
      market.Terminate(alloc.id, job_end);
    }
  }
  result.bill = ComputeTotalJobBill(market, job_end);
  result.allocation_bills.reserve(market.allocations().size());
  for (const Allocation& alloc : market.allocations()) {
    AllocationBillDetail detail;
    detail.id = alloc.id;
    detail.on_demand = alloc.kind == AllocationKind::kOnDemand;
    detail.evicted = alloc.state == AllocationState::kEvicted && alloc.end <= job_end;
    detail.count = alloc.count;
    detail.bill = ComputeJobBill(market, alloc.id, job_end);
    result.allocation_bills.push_back(std::move(detail));
  }
}
}  // namespace

const char* SchemeName(SchemeKind scheme) {
  switch (scheme) {
    case SchemeKind::kOnDemandOnly:
      return "OnDemandOnly";
    case SchemeKind::kStandardCheckpoint:
      return "Standard+Checkpoint";
    case SchemeKind::kStandardAgileML:
      return "Standard+AgileML";
    case SchemeKind::kProteus:
      return "Proteus";
    case SchemeKind::kFlintDiversified:
      return "Flint-Diversified";
  }
  return "?";
}

JobSpec JobSpec::ForReferenceDuration(const InstanceTypeCatalog& catalog, const std::string& type,
                                      int count, SimDuration duration, double phi) {
  JobSpec spec;
  spec.reference_type = type;
  spec.reference_count = count;
  const InstanceType& it = catalog.Get(type);
  spec.total_work = count * it.WorkPerHour() * (duration / kHour) * phi;
  return spec;
}

JobSimulator::JobSimulator(const InstanceTypeCatalog* catalog, const TraceStore* traces,
                           const EvictionModel* estimator)
    : catalog_(catalog), traces_(traces), estimator_(estimator) {
  PROTEUS_CHECK(catalog_ != nullptr);
  PROTEUS_CHECK(traces_ != nullptr);
  PROTEUS_CHECK(estimator_ != nullptr);
}

JobResult JobSimulator::Run(SchemeKind scheme, const JobSpec& job, const SchemeConfig& config,
                            SimTime start) const {
  if (scheme == SchemeKind::kProteus) {
    // The paper's scheme is BidBrain behind the AcquisitionPolicy seam.
    const BidBrain bidbrain(catalog_, traces_, estimator_, config.bidbrain);
    return Run(bidbrain, job, config, start);
  }

  SpotMarket market(*catalog_, *traces_);
  const std::vector<MarketKey> markets = traces_->Keys();
  PROTEUS_CHECK(!markets.empty());

  const bool uses_agileml = scheme == SchemeKind::kStandardAgileML;
  const bool uses_checkpointing = scheme == SchemeKind::kStandardCheckpoint ||
                                  scheme == SchemeKind::kFlintDiversified;
  const AppProfile& profile =
      uses_checkpointing ? config.checkpoint_profile : config.agileml_profile;
  const double rate_factor = uses_checkpointing ? (1.0 - config.checkpoint_overhead) : 1.0;

  JobResult result;
  SimTime t = start;
  const SimTime hard_end = start + config.max_runtime;
  WorkUnits done = 0.0;
  WorkUnits checkpoint_work = 0.0;
  SimTime paused_until = start;
  SimTime next_decision = start;
  SimTime next_checkpoint = std::numeric_limits<SimTime>::infinity();
  SimDuration checkpoint_interval = kHour;
  std::vector<AllocationId> live;

  // Picks the market with the lowest price per vCPU right now.
  auto cheapest_market = [&](SimTime now) -> MarketKey {
    MarketKey best = markets.front();
    double best_ppc = std::numeric_limits<double>::infinity();
    for (const MarketKey& key : markets) {
      const InstanceType* type = catalog_->Find(key.instance_type);
      if (type == nullptr) {
        continue;
      }
      const double ppc = traces_->Get(key).PriceAt(now) / type->vcpus;
      if (ppc < best_ppc) {
        best_ppc = ppc;
        best = key;
      }
    }
    return best;
  };

  auto live_spot_vcpus = [&]() {
    int vcpus = 0;
    for (const AllocationId id : live) {
      const Allocation& alloc = market.Get(id);
      if (alloc.kind == AllocationKind::kSpot) {
        vcpus += alloc.count * catalog_->Get(alloc.market.instance_type).vcpus;
      }
    }
    return vcpus;
  };

  // Work rate in WorkUnits per second. On-demand machines work only in
  // the all-on-demand scheme (in AgileML schemes they are the reliable
  // serving tier; Fig. 6 models them as W = 0).
  auto work_rate = [&]() {
    double vcpus = 0.0;
    for (const AllocationId id : live) {
      const Allocation& alloc = market.Get(id);
      const bool counts = scheme == SchemeKind::kOnDemandOnly
                              ? alloc.kind == AllocationKind::kOnDemand
                              : alloc.kind == AllocationKind::kSpot;
      if (counts) {
        vcpus += alloc.count * catalog_->Get(alloc.market.instance_type).vcpus;
      }
    }
    return vcpus * profile.phi * rate_factor / kHour;  // vCPU-hours per second.
  };

  // Standard bidding strategy: top up to the capacity target on the
  // currently cheapest market, bidding the on-demand price (§6.3).
  auto standard_topup = [&](SimTime now) {
    const int deficit = config.standard_target_vcpus - live_spot_vcpus();
    if (deficit <= 0) {
      return;
    }
    const MarketKey key = cheapest_market(now);
    const InstanceType& type = catalog_->Get(key.instance_type);
    const int count = (deficit + type.vcpus - 1) / type.vcpus;
    const auto id = market.RequestSpot(key, count, type.on_demand_price, now);
    if (id.has_value()) {
      live.push_back(*id);
      ++result.acquisitions;
      paused_until = std::max(paused_until, now + profile.sigma);
    }
  };

  // Flint-style diversification: split the capacity target over the
  // cheapest distinct markets so one revocation cannot take everything.
  auto diversified_topup = [&](SimTime now) {
    constexpr int kWays = 3;
    const int deficit = config.standard_target_vcpus - live_spot_vcpus();
    if (deficit <= 0) {
      return;
    }
    // Rank markets by price per vCPU.
    std::vector<std::pair<double, MarketKey>> ranked;
    for (const MarketKey& key : markets) {
      const InstanceType* type = catalog_->Find(key.instance_type);
      if (type != nullptr) {
        ranked.emplace_back(traces_->Get(key).PriceAt(now) / type->vcpus, key);
      }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    const int ways = std::min<int>(kWays, static_cast<int>(ranked.size()));
    for (int w = 0; w < ways; ++w) {
      const MarketKey& key = ranked[static_cast<std::size_t>(w)].second;
      const InstanceType& type = catalog_->Get(key.instance_type);
      const int share = (deficit / ways + type.vcpus - 1) / type.vcpus;
      if (share <= 0) {
        continue;
      }
      const auto id = market.RequestSpot(key, share, type.on_demand_price, now);
      if (id.has_value()) {
        live.push_back(*id);
        ++result.acquisitions;
      }
    }
    paused_until = std::max(paused_until, now + profile.sigma);
  };

  // --- Initial footprint ---
  const std::string& zone0 = markets.front().zone;
  if (scheme == SchemeKind::kOnDemandOnly) {
    live.push_back(market.RequestOnDemand({zone0, job.reference_type}, job.reference_count, t));
  } else if (uses_agileml) {
    live.push_back(
        market.RequestOnDemand({zone0, config.on_demand_type}, config.on_demand_count, t));
  }
  if (uses_checkpointing) {
    // MTTF-derived checkpoint interval (Young's formula), from the
    // trained eviction stats at the standard bid delta.
    const MarketKey key = cheapest_market(t);
    const InstanceType& type = catalog_->Get(key.instance_type);
    const Money delta = std::max(0.001, type.on_demand_price - traces_->Get(key).PriceAt(t));
    const EvictionStats stats = estimator_->Estimate(key, delta);
    const SimDuration mttf = kHour / std::max(stats.beta, 0.02);
    checkpoint_interval =
        std::max(5 * kMinute, std::sqrt(2.0 * config.checkpoint_write_time * mttf));
    next_checkpoint = t + checkpoint_interval;
  }

  // --- Event loop ---
  while (done + kWorkEpsilon < job.total_work && t < hard_end) {
    const double rate = work_rate();
    SimTime next = hard_end;
    if (scheme != SchemeKind::kOnDemandOnly) {
      next = std::min(next, next_decision);
    }
    for (const AllocationId id : live) {
      const auto& ev = market.Get(id).eviction_time;
      if (ev.has_value()) {
        next = std::min(next, std::max(*ev, t + kInstant));
      }
    }
    next = std::min(next, std::max(next_checkpoint, t + kInstant));
    if (paused_until > t) {
      next = std::min(next, paused_until);
    } else if (rate > 0.0) {
      next = std::min(next, t + (job.total_work - done) / rate);
    }
    next = std::max(next, t + kInstant);

    // Accrue work over [max(t, paused_until), next).
    const SimTime active_from = std::max(t, paused_until);
    if (next > active_from) {
      done += rate * (next - active_from);
    }
    t = next;
    if (done + kWorkEpsilon >= job.total_work) {
      break;
    }

    // Process evictions due now (correlated within an allocation).
    std::vector<AllocationId> evicted_now;
    for (const AllocationId id : live) {
      const auto& ev = market.Get(id).eviction_time;
      if (ev.has_value() && *ev <= t && market.Get(id).running()) {
        evicted_now.push_back(id);
      }
    }
    for (const AllocationId id : evicted_now) {
      market.MarkEvicted(id);
      live.erase(std::remove(live.begin(), live.end(), id), live.end());
      ++result.evictions;
    }
    if (!evicted_now.empty()) {
      if (uses_checkpointing) {
        done = std::min(done, checkpoint_work);  // Roll back to checkpoint.
        paused_until = std::max(paused_until, t + config.checkpoint_restart_delay);
      } else if (uses_agileml) {
        paused_until = std::max(paused_until, t + profile.lambda);
      }
      next_decision = t;  // React immediately (§5).
    }

    // Checkpoint tick (MTTF-based interval, Young's formula; the 17%
    // throughput overhead is already folded into rate_factor).
    if (t >= next_checkpoint) {
      checkpoint_work = done;
      next_checkpoint = t + checkpoint_interval;
    }

    // Decision point.
    if (scheme != SchemeKind::kOnDemandOnly && t >= next_decision) {
      if (scheme == SchemeKind::kStandardCheckpoint ||
          scheme == SchemeKind::kStandardAgileML) {
        if (paused_until <= t || scheme == SchemeKind::kStandardAgileML) {
          standard_topup(t);
        }
      } else if (scheme == SchemeKind::kFlintDiversified) {
        if (paused_until <= t) {
          diversified_topup(t);
        }
      }
      next_decision = t + config.decision_period;
    }
  }

  result.completed = done + kWorkEpsilon >= job.total_work;
  result.runtime = t - start;
  result.work_done = done;
  // Job over: release everything still running (accounting pro-rates the
  // final hour; the market itself would bill the full hour).
  FinalizeBill(market, t, result);
  return result;
}

JobResult JobSimulator::Run(const AcquisitionPolicy& policy, const JobSpec& job,
                            const SchemeConfig& config, SimTime start) const {
  SpotMarket market(*catalog_, *traces_);
  const std::vector<MarketKey> markets = traces_->Keys();
  PROTEUS_CHECK(!markets.empty());

  // Policy runs never checkpoint: elasticity (AgileML profile) handles
  // evictions, exactly as the kProteus scheme does.
  const AppProfile& profile = config.agileml_profile;
  const bool on_demand_workers = policy.OnDemandDoesWork();

  JobResult result;
  SimTime t = start;
  const SimTime hard_end = start + config.max_runtime;
  WorkUnits done = 0.0;
  SimTime paused_until = start;
  SimTime next_decision = start;
  std::vector<AllocationId> live;
  std::set<AllocationId> scheduled_termination;
  std::vector<std::pair<SimTime, AllocationId>> terminations;  // Sorted by time.

  // Work rate in WorkUnits per second (see the scheme loop above: the
  // worker fleet is spot unless the policy claims on-demand semantics).
  auto work_rate = [&]() {
    double vcpus = 0.0;
    for (const AllocationId id : live) {
      const Allocation& alloc = market.Get(id);
      const bool counts = on_demand_workers ? alloc.kind == AllocationKind::kOnDemand
                                            : alloc.kind == AllocationKind::kSpot;
      if (counts) {
        vcpus += alloc.count * catalog_->Get(alloc.market.instance_type).vcpus;
      }
    }
    return vcpus * profile.phi / kHour;
  };

  // --- Initial footprint ---
  const std::string& zone0 = markets.front().zone;
  if (on_demand_workers) {
    live.push_back(market.RequestOnDemand({zone0, job.reference_type}, job.reference_count, t));
  } else {
    live.push_back(
        market.RequestOnDemand({zone0, config.on_demand_type}, config.on_demand_count, t));
  }

  // --- Event loop ---
  while (done + kWorkEpsilon < job.total_work && t < hard_end) {
    const double rate = work_rate();
    SimTime next = hard_end;
    next = std::min(next, next_decision);
    for (const AllocationId id : live) {
      const auto& ev = market.Get(id).eviction_time;
      if (ev.has_value()) {
        next = std::min(next, std::max(*ev, t + kInstant));
      }
    }
    for (const auto& [when, unused] : terminations) {
      next = std::min(next, std::max(when, t + kInstant));
    }
    if (paused_until > t) {
      next = std::min(next, paused_until);
    } else if (rate > 0.0) {
      next = std::min(next, t + (job.total_work - done) / rate);
    }
    next = std::max(next, t + kInstant);

    // Accrue work over [max(t, paused_until), next).
    const SimTime active_from = std::max(t, paused_until);
    if (next > active_from) {
      done += rate * (next - active_from);
    }
    t = next;
    if (done + kWorkEpsilon >= job.total_work) {
      break;
    }

    // Process evictions due now (correlated within an allocation).
    std::vector<AllocationId> evicted_now;
    for (const AllocationId id : live) {
      const auto& ev = market.Get(id).eviction_time;
      if (ev.has_value() && *ev <= t && market.Get(id).running()) {
        evicted_now.push_back(id);
      }
    }
    for (const AllocationId id : evicted_now) {
      market.MarkEvicted(id);
      live.erase(std::remove(live.begin(), live.end(), id), live.end());
      ++result.evictions;
    }
    if (!evicted_now.empty()) {
      paused_until = std::max(paused_until, t + profile.lambda);
      next_decision = t;  // React immediately (§5).
    }

    // Scheduled (policy-requested) terminations.
    for (auto it = terminations.begin(); it != terminations.end();) {
      if (it->first <= t) {
        const AllocationId id = it->second;
        if (market.Get(id).running()) {
          market.Terminate(id, t);
          live.erase(std::remove(live.begin(), live.end(), id), live.end());
        }
        it = terminations.erase(it);
      } else {
        ++it;
      }
    }

    // Decision point: the policy seam.
    if (t >= next_decision) {
      std::vector<LiveAllocation> view;
      for (const AllocationId id : live) {
        const Allocation& alloc = market.Get(id);
        view.push_back({alloc.id, alloc.market, alloc.count, alloc.bid,
                        alloc.kind == AllocationKind::kOnDemand, alloc.start});
      }
      for (const BidAction& action : policy.Decide(t, view)) {
        if (action.kind == BidAction::Kind::kAcquire) {
          if (action.count <= 0) {
            continue;  // Defensive against misbehaving custom policies.
          }
          const auto id = market.RequestSpot(action.market, action.count, action.bid, t);
          if (id.has_value()) {
            live.push_back(*id);
            ++result.acquisitions;
            paused_until = std::max(paused_until, t + profile.sigma);
          }
        } else if (action.target != kInvalidAllocation &&
                   scheduled_termination.insert(action.target).second) {
          const Allocation& alloc = market.Get(action.target);
          terminations.emplace_back(alloc.HourEnd(t) - 1.0, action.target);
        }
      }
      next_decision = t + config.decision_period;
    }
  }

  result.completed = done + kWorkEpsilon >= job.total_work;
  result.runtime = t - start;
  result.work_done = done;
  FinalizeBill(market, t, result);
  return result;
}

}  // namespace proteus
