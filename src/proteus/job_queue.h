// Sequential job execution (§5): "Proteus assumes that multiple ML
// applications are executed in sequence. Upon completing the final job
// in the queue, Proteus immediately terminates the on-demand resources.
// It then waits until the end of current billing hours to terminate the
// spot allocations, in hope that they are evicted by AWS prior to the
// end of the billing hour, lowering the overall cost."
//
// The queue reuses the live footprint across job boundaries — a spot
// hour paid for job k keeps working for job k+1, which is exactly why
// the paper's per-job accounting does not charge a job for the minutes
// remaining in its final billing hours.
#ifndef SRC_PROTEUS_JOB_QUEUE_H_
#define SRC_PROTEUS_JOB_QUEUE_H_

#include <string>
#include <vector>

#include "src/proteus/job_simulator.h"

namespace proteus {

struct QueuedJob {
  std::string name;
  JobSpec spec;
};

struct QueuedJobResult {
  std::string name;
  bool completed = false;
  SimDuration runtime = 0.0;
  // Per-job cost: this job's share of the footprint's charges, computed
  // with the paper's accounting (final partial hours carried over to the
  // next job are not charged to this one).
  Money cost = 0.0;
  int evictions = 0;
};

struct JobQueueResult {
  std::vector<QueuedJobResult> jobs;
  Money total_cost = 0.0;      // True total billed for the whole queue.
  SimDuration makespan = 0.0;
  // Money saved at shutdown by spot allocations that AWS evicted before
  // their final billing hour ended (the §5 "hope for eviction").
  Money shutdown_refunds = 0.0;
};

class JobQueueSimulator {
 public:
  JobQueueSimulator(const InstanceTypeCatalog* catalog, const TraceStore* traces,
                    const EvictionModel* estimator);

  // Runs the jobs back to back with one shared footprint (Proteus
  // scheme). Allocations persist across job boundaries.
  JobQueueResult Run(const std::vector<QueuedJob>& jobs, const SchemeConfig& config,
                     SimTime start) const;

 private:
  const InstanceTypeCatalog* catalog_;
  const TraceStore* traces_;
  const EvictionModel* estimator_;
};

}  // namespace proteus

#endif  // SRC_PROTEUS_JOB_QUEUE_H_
