#include "src/proteus/accounting.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace proteus {

void JobBill::Accumulate(const JobBill& other) {
  cost += other.cost;
  on_demand_hours += other.on_demand_hours;
  spot_paid_hours += other.spot_paid_hours;
  free_hours += other.free_hours;
}

JobBill ComputeJobBill(const SpotMarket& market, AllocationId id, SimTime job_end) {
  const Allocation& alloc = market.Get(id);
  JobBill bill;
  const SimTime usage_end = std::min(job_end, alloc.EndOrInfinity());
  if (usage_end <= alloc.start) {
    return bill;
  }
  const bool evicted = alloc.state == AllocationState::kEvicted && alloc.end <= job_end;
  const PriceSeries* series =
      alloc.kind == AllocationKind::kSpot ? &market.traces().Get(alloc.market) : nullptr;
  const Money od_rate = market.catalog().Get(alloc.market.instance_type).on_demand_price;

  for (SimTime hour_start = alloc.start; hour_start < usage_end; hour_start += kHour) {
    const Money rate = series != nullptr ? series->PriceAt(hour_start) : od_rate;
    const SimTime hour_end = hour_start + kHour;
    const bool final_hour = hour_end >= usage_end;
    const double used = (std::min(hour_end, usage_end) - hour_start) / kHour;
    const double machine_hours = used * alloc.count;
    if (final_hour && evicted) {
      // The hour an eviction interrupts is refunded: free compute.
      bill.free_hours += machine_hours;
      continue;
    }
    // Full hours are charged whole; the job's final (partial) hour is
    // charged pro-rata per the paper's per-job accounting.
    const double billed_fraction = final_hour ? used : 1.0;
    bill.cost += rate * alloc.count * billed_fraction;
    if (alloc.kind == AllocationKind::kOnDemand) {
      bill.on_demand_hours += machine_hours;
    } else {
      bill.spot_paid_hours += machine_hours;
    }
  }
  return bill;
}

JobBill ComputeTotalJobBill(const SpotMarket& market, SimTime job_end) {
  JobBill total;
  for (const auto& alloc : market.allocations()) {
    total.Accumulate(ComputeJobBill(market, alloc.id, job_end));
  }
  return total;
}

}  // namespace proteus
