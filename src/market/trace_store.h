// Collection of price traces keyed by (availability zone, instance type).
#ifndef SRC_MARKET_TRACE_STORE_H_
#define SRC_MARKET_TRACE_STORE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/market/instance_type.h"
#include "src/market/price_series.h"
#include "src/market/trace_gen.h"

namespace proteus {

struct MarketKey {
  std::string zone;
  std::string instance_type;
  bool operator<(const MarketKey& other) const {
    if (zone != other.zone) {
      return zone < other.zone;
    }
    return instance_type < other.instance_type;
  }
  bool operator==(const MarketKey& other) const = default;
};

class TraceStore {
 public:
  void Put(const MarketKey& key, PriceSeries series);

  const PriceSeries* Find(const MarketKey& key) const;
  // CHECK-fails when absent.
  const PriceSeries& Get(const MarketKey& key) const;

  std::vector<MarketKey> Keys() const;
  bool empty() const { return traces_.empty(); }

  // Builds a store covering `zones` x `catalog types`, each generated
  // independently (the paper notes markets "move relatively
  // independently").
  static TraceStore GenerateSynthetic(const InstanceTypeCatalog& catalog,
                                      const std::vector<std::string>& zones, SimDuration duration,
                                      const SyntheticTraceConfig& config, Rng& rng);

  // CSV persistence: columns zone,type,time_sec,price.
  std::string ToCsv() const;
  static TraceStore FromCsv(const std::string& text);
  bool WriteFile(const std::string& path) const;
  static TraceStore ReadFile(const std::string& path);

 private:
  std::map<MarketKey, PriceSeries> traces_;
};

}  // namespace proteus

#endif  // SRC_MARKET_TRACE_STORE_H_
