// Google Compute Engine preemptible-instance model (§2.2).
//
// Differences from the EC2 spot market, as the paper enumerates:
//   1. fixed price at a 70% discount off on-demand — no price movement
//      and therefore no bidding;
//   2. a 30-second revocation warning instead of 2 minutes;
//   3. instances live at most 24 hours;
//   4. revocation is at the provider's discretion (we model a Poisson
//      hazard), and — unlike EC2 — there is no refund for the partial
//      period at revocation (GCE billed per minute with a 10-minute
//      minimum, so there is no "free compute" lottery to exploit).
#ifndef SRC_MARKET_PREEMPTIBLE_H_
#define SRC_MARKET_PREEMPTIBLE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/market/instance_type.h"
#include "src/market/spot_market.h"  // AllocationState.

namespace proteus {

struct PreemptibleConfig {
  double discount = 0.70;                 // Off the on-demand price.
  SimDuration warning = 30 * kSecond;     // vs EC2's 2 minutes.
  SimDuration max_lifetime = 24 * kHour;  // Hard cap.
  // Poisson revocation hazard (per instance-hour). GCE historically
  // preempted 5-15% of instances per day under normal load.
  double revocations_per_hour = 0.01;
  // Billing granularity and minimum charge.
  SimDuration billing_granularity = kMinute;
  SimDuration minimum_charge = 10 * kMinute;
};

struct PreemptibleAllocation {
  AllocationId id = kInvalidAllocation;
  std::string instance_type;
  int count = 0;
  SimTime start = 0.0;
  // Sampled at request time: when GCE takes the instances back (always
  // set — the 24h cap guarantees an end).
  SimTime revocation_time = 0.0;
  AllocationState state = AllocationState::kRunning;
  SimTime end = 0.0;

  bool running() const { return state == AllocationState::kRunning; }
};

class PreemptibleMarket {
 public:
  PreemptibleMarket(const InstanceTypeCatalog& catalog, PreemptibleConfig config,
                    std::uint64_t seed);

  Money PricePerHour(const std::string& instance_type) const;

  // Preemptible capacity is (modeled as) always available.
  AllocationId Request(const std::string& instance_type, int count, SimTime t);

  void Terminate(AllocationId id, SimTime t);
  void MarkRevoked(AllocationId id);

  const PreemptibleAllocation& Get(AllocationId id) const;
  const std::vector<PreemptibleAllocation>& allocations() const { return allocations_; }

  SimTime WarningTime(AllocationId id) const;

  // Per-minute billing with a 10-minute minimum; no refunds.
  Money Bill(AllocationId id, SimTime as_of) const;
  Money TotalBill(SimTime as_of) const;

  const PreemptibleConfig& config() const { return config_; }

 private:
  const InstanceTypeCatalog& catalog_;
  PreemptibleConfig config_;
  Rng rng_;
  std::vector<PreemptibleAllocation> allocations_;
};

}  // namespace proteus

#endif  // SRC_MARKET_PREEMPTIBLE_H_
