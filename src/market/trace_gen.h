// Synthetic spot-price trace generator.
//
// Substitution note (see DESIGN.md §2): the paper evaluates over recorded
// AWS US-EAST-1 traces (Mar-Aug 2016). We generate price processes with
// the same qualitative structure observed in those traces and in Fig. 3:
// long quiet periods near ~20-30% of the on-demand price with small
// fluctuations, punctuated by sharp demand spikes that exceed the
// on-demand price (often by several multiples) and decay within minutes
// to an hour or two. BidBrain consumes only (time, price) pairs, so its
// machinery is exercised identically.
#ifndef SRC_MARKET_TRACE_GEN_H_
#define SRC_MARKET_TRACE_GEN_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/market/instance_type.h"
#include "src/market/price_series.h"

namespace proteus {

struct SyntheticTraceConfig {
  // Quiet-regime level, as a fraction of the on-demand price.
  double base_fraction = 0.25;
  // Mean-reversion strength of the quiet-regime log price per step.
  double reversion = 0.05;
  // Per-step volatility of the quiet-regime log price.
  double volatility = 0.02;
  // Price spikes: Poisson arrivals per day.
  double spikes_per_day = 3.0;
  // Spike peak as a multiple of the on-demand price: log-uniform in
  // [min, max]. AWS capped bids at 10x on-demand.
  double spike_multiple_min = 1.05;
  double spike_multiple_max = 8.0;
  // Spike duration, exponential with this mean (seconds).
  SimDuration spike_duration_mean = 20 * kMinute;
  // Sampling step of the process (seconds).
  SimDuration step = 5 * kMinute;
  // Hard floor as a fraction of on-demand (AWS never reaches zero).
  double floor_fraction = 0.1;
};

// Generates a trace of the given duration for one instance type.
PriceSeries GenerateSyntheticTrace(const InstanceType& type, SimDuration duration,
                                   const SyntheticTraceConfig& config, Rng& rng);

}  // namespace proteus

#endif  // SRC_MARKET_TRACE_GEN_H_
