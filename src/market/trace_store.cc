#include "src/market/trace_store.h"

#include <fstream>
#include <sstream>

#include "src/common/csv.h"
#include "src/common/logging.h"

namespace proteus {

void TraceStore::Put(const MarketKey& key, PriceSeries series) {
  traces_[key] = std::move(series);
}

const PriceSeries* TraceStore::Find(const MarketKey& key) const {
  auto it = traces_.find(key);
  return it == traces_.end() ? nullptr : &it->second;
}

const PriceSeries& TraceStore::Get(const MarketKey& key) const {
  const PriceSeries* series = Find(key);
  PROTEUS_CHECK(series != nullptr) << "no trace for " << key.zone << "/" << key.instance_type;
  return *series;
}

std::vector<MarketKey> TraceStore::Keys() const {
  std::vector<MarketKey> keys;
  keys.reserve(traces_.size());
  for (const auto& [key, unused] : traces_) {
    keys.push_back(key);
  }
  return keys;
}

TraceStore TraceStore::GenerateSynthetic(const InstanceTypeCatalog& catalog,
                                         const std::vector<std::string>& zones,
                                         SimDuration duration, const SyntheticTraceConfig& config,
                                         Rng& rng) {
  TraceStore store;
  for (const auto& zone : zones) {
    for (const auto& type : catalog.types()) {
      Rng child = rng.Fork();
      store.Put({zone, type.name}, GenerateSyntheticTrace(type, duration, config, child));
    }
  }
  return store;
}

std::string TraceStore::ToCsv() const {
  CsvWriter writer({"zone", "type", "time_sec", "price"});
  for (const auto& [key, series] : traces_) {
    for (const auto& point : series.points()) {
      writer.AddRow({key.zone, key.instance_type, std::to_string(point.time),
                     std::to_string(point.price)});
    }
  }
  return writer.Render();
}

TraceStore TraceStore::FromCsv(const std::string& text) {
  TraceStore store;
  const CsvTable table = ParseCsv(text);
  std::map<MarketKey, std::vector<PricePoint>> grouped;
  for (const auto& row : table.rows) {
    if (row.size() != 4) {
      continue;
    }
    grouped[{row[0], row[1]}].push_back({std::stod(row[2]), std::stod(row[3])});
  }
  for (auto& [key, points] : grouped) {
    store.Put(key, PriceSeries(std::move(points)));
  }
  return store;
}

bool TraceStore::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    PROTEUS_LOG(Error) << "cannot write " << path;
    return false;
  }
  f << ToCsv();
  return static_cast<bool>(f);
}

TraceStore TraceStore::ReadFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    return {};
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  return FromCsv(buf.str());
}

}  // namespace proteus
