#include "src/market/price_series.h"

#include <algorithm>

#include "src/common/logging.h"

namespace proteus {

PriceSeries::PriceSeries(std::vector<PricePoint> points) : points_(std::move(points)) {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    PROTEUS_CHECK_GT(points_[i].time, points_[i - 1].time) << "price points must be increasing";
  }
}

void PriceSeries::Append(SimTime time, Money price) {
  if (!points_.empty()) {
    PROTEUS_CHECK_GT(time, points_.back().time);
  }
  points_.push_back({time, price});
}

SimTime PriceSeries::start_time() const {
  PROTEUS_CHECK(!points_.empty());
  return points_.front().time;
}

SimTime PriceSeries::end_time() const {
  PROTEUS_CHECK(!points_.empty());
  return points_.back().time;
}

std::size_t PriceSeries::IndexAt(SimTime t) const {
  PROTEUS_CHECK(!points_.empty());
  // First point with time > t, then step back.
  auto it = std::upper_bound(points_.begin(), points_.end(), t,
                             [](SimTime value, const PricePoint& p) { return value < p.time; });
  if (it == points_.begin()) {
    return 0;
  }
  return static_cast<std::size_t>(std::distance(points_.begin(), it)) - 1;
}

Money PriceSeries::PriceAt(SimTime t) const { return points_[IndexAt(t)].price; }

std::optional<SimTime> PriceSeries::FirstTimeAbove(Money bid, SimTime from, SimTime horizon) const {
  PROTEUS_CHECK(!points_.empty());
  if (PriceAt(from) > bid) {
    return from;
  }
  for (std::size_t i = IndexAt(from) + 1; i < points_.size(); ++i) {
    if (points_[i].time > horizon) {
      break;
    }
    if (points_[i].price > bid) {
      return points_[i].time;
    }
  }
  return std::nullopt;
}

Money PriceSeries::MinPrice(SimTime from, SimTime to) const {
  Money best = PriceAt(from);
  for (std::size_t i = IndexAt(from) + 1; i < points_.size() && points_[i].time <= to; ++i) {
    best = std::min(best, points_[i].price);
  }
  return best;
}

Money PriceSeries::MaxPrice(SimTime from, SimTime to) const {
  Money best = PriceAt(from);
  for (std::size_t i = IndexAt(from) + 1; i < points_.size() && points_[i].time <= to; ++i) {
    best = std::max(best, points_[i].price);
  }
  return best;
}

Money PriceSeries::AveragePrice(SimTime from, SimTime to) const {
  PROTEUS_CHECK_GT(to, from);
  double weighted = 0.0;
  SimTime cursor = from;
  Money current = PriceAt(from);
  for (std::size_t i = IndexAt(from) + 1; i < points_.size() && points_[i].time < to; ++i) {
    weighted += current * (points_[i].time - cursor);
    cursor = points_[i].time;
    current = points_[i].price;
  }
  weighted += current * (to - cursor);
  return weighted / (to - from);
}

}  // namespace proteus
