#include "src/market/capacity_trace.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/stats.h"

namespace proteus {

CapacityTrace::CapacityTrace(std::vector<CapacityPoint> points) : points_(std::move(points)) {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    PROTEUS_CHECK_GT(points_[i].time, points_[i - 1].time);
  }
}

std::size_t CapacityTrace::IndexAt(SimTime t) const {
  PROTEUS_CHECK(!points_.empty());
  auto it = std::upper_bound(points_.begin(), points_.end(), t,
                             [](SimTime value, const CapacityPoint& p) { return value < p.time; });
  if (it == points_.begin()) {
    return 0;
  }
  return static_cast<std::size_t>(std::distance(points_.begin(), it)) - 1;
}

int CapacityTrace::SlotsAt(SimTime t) const { return points_[IndexAt(t)].slots; }

int CapacityTrace::MinSlots(SimTime from, SimTime to) const {
  int best = SlotsAt(from);
  for (std::size_t i = IndexAt(from) + 1; i < points_.size() && points_[i].time <= to; ++i) {
    best = std::min(best, points_[i].slots);
  }
  return best;
}

std::optional<SimTime> CapacityTrace::FirstTimeBelow(int needed, SimTime from,
                                                     SimTime horizon) const {
  if (SlotsAt(from) < needed) {
    return from;
  }
  for (std::size_t i = IndexAt(from) + 1; i < points_.size() && points_[i].time <= horizon; ++i) {
    if (points_[i].slots < needed) {
      return points_[i].time;
    }
  }
  return std::nullopt;
}

SimTime CapacityTrace::end_time() const {
  PROTEUS_CHECK(!points_.empty());
  return points_.back().time;
}

CapacityTrace GenerateCapacityTrace(const CapacityTraceConfig& config, SimDuration duration,
                                    Rng& rng) {
  PROTEUS_CHECK_GT(duration, 0.0);
  struct Burst {
    SimTime start;
    SimTime end;
    double size;  // Fraction of the cluster.
  };
  std::vector<Burst> bursts;
  const double rate = config.bursts_per_day / kDay;
  SimTime t = 0.0;
  while (rate > 0.0) {
    t += rng.ExponentialMean(1.0 / rate);
    if (t >= duration) {
      break;
    }
    bursts.push_back({t, t + rng.ExponentialMean(config.burst_duration_mean),
                      rng.Uniform(0.05, config.burst_size_max)});
  }

  std::vector<CapacityPoint> points;
  int last = -1;
  for (SimTime now = 0.0; now < duration; now += config.step) {
    // Diurnal business load peaking mid-day.
    const double day_phase = 2.0 * M_PI * (now / kDay);
    double load = config.base_load + config.diurnal_amplitude * 0.5 * (1.0 - std::cos(day_phase));
    for (const Burst& burst : bursts) {
      if (now >= burst.start && now < burst.end) {
        load += burst.size;
      }
    }
    const int slots = std::clamp(
        static_cast<int>(std::lround(config.total_slots * (1.0 - load))), 0,
        config.total_slots);
    if (slots != last) {
      points.push_back({now, slots});
      last = slots;
    }
  }
  if (points.empty()) {
    points.push_back({0.0, config.total_slots});
  }
  return CapacityTrace(std::move(points));
}

void CapacityEvictionModel::Train(const CapacityTrace& trace, SimTime begin, SimTime end,
                                  int allocation_slots, SimDuration sample_step) {
  PROTEUS_CHECK_GT(end, begin);
  PROTEUS_CHECK_GT(allocation_slots, 0);
  int samples = 0;
  int evicted = 0;
  SampleStats times;
  for (SimTime t = begin; t + kHour <= end; t += sample_step) {
    const int available = trace.SlotsAt(t);
    if (available < allocation_slots) {
      continue;  // Allocation would not have been granted.
    }
    // Revoked when capacity falls below what we hold.
    const auto crossing = trace.FirstTimeBelow(allocation_slots, t, t + kHour);
    ++samples;
    if (crossing.has_value()) {
      ++evicted;
      times.Add(*crossing - t);
    }
  }
  stats_.samples = samples;
  stats_.beta = samples > 0 ? static_cast<double>(evicted) / samples : 1.0;
  stats_.median_time_to_eviction = times.empty() ? kHour : times.Median();
}

EvictionStats CapacityEvictionModel::Estimate(const MarketKey& market, Money bid_delta) const {
  (void)market;     // One pool: all "markets" share the cluster's slack.
  (void)bid_delta;  // No auction in a fixed-price cluster.
  return stats_;
}

TraceStore MakePrivateClusterPriceStore(const InstanceTypeCatalog& catalog,
                                        const std::string& zone, Money rate_per_vcpu_hour,
                                        SimDuration horizon) {
  TraceStore store;
  for (const auto& type : catalog.types()) {
    PriceSeries series;
    series.Append(0.0, rate_per_vcpu_hour * type.vcpus);
    // A second point pins the horizon so end_time() is meaningful.
    series.Append(horizon, rate_per_vcpu_hour * type.vcpus);
    store.Put({zone, type.name}, series);
  }
  return store;
}

}  // namespace proteus
