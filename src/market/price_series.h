// A spot price history for one (availability zone, instance type) pair:
// a right-continuous step function of time.
//
// Boundary semantics (every query clamps to the recorded span; none
// extrapolates): queries before start_time() read the first recorded
// price, and the last recorded price persists indefinitely past
// end_time() — a backtest window may overhang the end of a trace and
// sees a frozen market there rather than an error. All queries
// CHECK-fail on an empty series. tests/price_series_test.cc pins these
// down.
#ifndef SRC_MARKET_PRICE_SERIES_H_
#define SRC_MARKET_PRICE_SERIES_H_

#include <optional>
#include <vector>

#include "src/common/types.h"

namespace proteus {

struct PricePoint {
  SimTime time;
  Money price;
};

class PriceSeries {
 public:
  PriceSeries() = default;
  // Points must be strictly increasing in time; first point defines the
  // series start.
  explicit PriceSeries(std::vector<PricePoint> points);

  void Append(SimTime time, Money price);

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  SimTime start_time() const;
  SimTime end_time() const;  // Time of the last change point.

  // Price in effect at time t (the step value). t before the first point
  // returns the first price; t past the last point returns the last
  // price (see the boundary-semantics note above).
  Money PriceAt(SimTime t) const;

  // Earliest time in (from, horizon] at which the price strictly exceeds
  // `bid`. Returns nullopt if it never does within the horizon. If the
  // price already exceeds the bid at `from`, returns `from`.
  std::optional<SimTime> FirstTimeAbove(Money bid, SimTime from, SimTime horizon) const;

  // Minimum / maximum price over [from, to]. Change points outside the
  // recorded span don't exist, so a range hanging past end_time() only
  // sees the final price.
  Money MinPrice(SimTime from, SimTime to) const;
  Money MaxPrice(SimTime from, SimTime to) const;

  // Time-weighted average price over [from, to]. Requires to > from;
  // the stretch past the last change point is weighted at the final
  // price.
  Money AveragePrice(SimTime from, SimTime to) const;

  const std::vector<PricePoint>& points() const { return points_; }

 private:
  // Index of the last point with time <= t, or 0.
  std::size_t IndexAt(SimTime t) const;

  std::vector<PricePoint> points_;
};

}  // namespace proteus

#endif  // SRC_MARKET_PRICE_SERIES_H_
