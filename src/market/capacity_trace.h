// Private best-effort cluster model (§7 Discussion).
//
// In a corporate mixed-function cluster, best-effort allocations run on
// slack capacity and are revoked when business-critical (higher
// priority) load returns. There is no auction: the "price" is a constant
// internal charge-back rate. What still varies is *reliability*: the
// expected time to revocation depends on how much slack exists and how
// it fluctuates. The paper notes BidBrain "may perform reliability
// calculations by observing available resource capacity, its dynamics
// over time, and the activity of higher-priority jobs" — this module
// implements exactly that:
//   - CapacityTrace: best-effort slot availability over time, generated
//     from a diurnal baseline plus bursty high-priority jobs;
//   - CapacityEvictionModel: an EvictionModel that estimates, for an
//     allocation of k slots, the probability that available capacity
//     dips below the currently-claimed level within an hour.
#ifndef SRC_MARKET_CAPACITY_TRACE_H_
#define SRC_MARKET_CAPACITY_TRACE_H_

#include <map>
#include <vector>

#include "src/bidbrain/eviction_estimator.h"
#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/market/trace_store.h"

namespace proteus {

// Step function: available best-effort slots over time.
struct CapacityPoint {
  SimTime time;
  int slots;
};

class CapacityTrace {
 public:
  CapacityTrace() = default;
  explicit CapacityTrace(std::vector<CapacityPoint> points);

  int SlotsAt(SimTime t) const;
  // Minimum capacity over [from, to].
  int MinSlots(SimTime from, SimTime to) const;
  // Earliest time in [from, horizon] at which capacity drops below
  // `needed`; nullopt if it never does.
  std::optional<SimTime> FirstTimeBelow(int needed, SimTime from, SimTime horizon) const;

  bool empty() const { return points_.empty(); }
  SimTime end_time() const;
  const std::vector<CapacityPoint>& points() const { return points_; }

 private:
  std::size_t IndexAt(SimTime t) const;
  std::vector<CapacityPoint> points_;
};

struct CapacityTraceConfig {
  int total_slots = 256;
  // Steady business-critical load as a fraction of the cluster, plus a
  // diurnal swing (daytime peaks squeeze best-effort capacity).
  double base_load = 0.4;
  double diurnal_amplitude = 0.25;
  // Bursty high-priority jobs: Poisson arrivals, exponential durations,
  // uniform sizes.
  double bursts_per_day = 4.0;
  SimDuration burst_duration_mean = 45 * kMinute;
  double burst_size_max = 0.5;  // Fraction of the cluster.
  SimDuration step = 5 * kMinute;
};

CapacityTrace GenerateCapacityTrace(const CapacityTraceConfig& config, SimDuration duration,
                                    Rng& rng);

// EvictionModel over capacity dynamics. Bid deltas are meaningless in a
// fixed-price cluster and are ignored; `allocation_slots` captures how
// much headroom an allocation of typical size needs.
class CapacityEvictionModel : public EvictionModel {
 public:
  CapacityEvictionModel() = default;

  // Replays [begin, end) of the trace: at each sample instant, a
  // hypothetical allocation of `allocation_slots` on top of the used
  // slack is revoked when capacity falls below what is already claimed.
  void Train(const CapacityTrace& trace, SimTime begin, SimTime end, int allocation_slots,
             SimDuration sample_step = 10 * kMinute);

  bool trained() const { return stats_.samples > 0; }

  EvictionStats Estimate(const MarketKey& market, Money bid_delta) const override;

 private:
  EvictionStats stats_;
};

// Builds a constant-price TraceStore for a private cluster: every
// "market" (one per slot-type) is priced at `rate` forever. BidBrain
// consumes it unchanged.
TraceStore MakePrivateClusterPriceStore(const InstanceTypeCatalog& catalog,
                                        const std::string& zone, Money rate_per_vcpu_hour,
                                        SimDuration horizon);

}  // namespace proteus

#endif  // SRC_MARKET_CAPACITY_TRACE_H_
