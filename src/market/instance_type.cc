#include "src/market/instance_type.h"

#include "src/common/logging.h"

namespace proteus {

InstanceTypeCatalog InstanceTypeCatalog::Default() {
  InstanceTypeCatalog catalog;
  // 2016 US-EAST-1 Linux on-demand prices.
  catalog.Add({"c4.large", 2, 3.75, 0.105});
  catalog.Add({"c4.xlarge", 4, 7.5, 0.209});
  catalog.Add({"c4.2xlarge", 8, 15.0, 0.419});
  catalog.Add({"c4.4xlarge", 16, 30.0, 0.838});
  catalog.Add({"m4.xlarge", 4, 16.0, 0.215});
  catalog.Add({"m4.2xlarge", 8, 32.0, 0.431});
  return catalog;
}

void InstanceTypeCatalog::Add(InstanceType type) {
  PROTEUS_CHECK(Find(type.name) == nullptr) << "duplicate instance type " << type.name;
  types_.push_back(std::move(type));
}

const InstanceType* InstanceTypeCatalog::Find(const std::string& name) const {
  for (const auto& t : types_) {
    if (t.name == name) {
      return &t;
    }
  }
  return nullptr;
}

const InstanceType& InstanceTypeCatalog::Get(const std::string& name) const {
  const InstanceType* t = Find(name);
  PROTEUS_CHECK(t != nullptr) << "unknown instance type " << name;
  return *t;
}

}  // namespace proteus
