// Trace-driven EC2 spot-market simulator.
//
// Semantics modeled after the 2016-era EC2 spot market the paper targets:
//  - A bid (instance type, count, bid price) is granted immediately when
//    the current market price <= bid, and retained until the market price
//    strictly exceeds the bid (eviction) or the user terminates it.
//  - Billing is per instance-hour, charged at the market price in effect
//    at the start of each instance-hour.
//  - If AWS evicts the allocation, the in-progress hour is refunded
//    ("free compute"). If the user terminates, the in-progress hour is
//    charged in full.
//  - A two-minute warning precedes each eviction.
//  - A granted bid price cannot be changed (paper §2.2).
// On-demand instances are billed hourly at the fixed catalog price and are
// never evicted.
#ifndef SRC_MARKET_SPOT_MARKET_H_
#define SRC_MARKET_SPOT_MARKET_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/market/instance_type.h"
#include "src/market/trace_store.h"

namespace proteus {

inline constexpr SimDuration kEvictionWarning = 2 * kMinute;

enum class AllocationState {
  kRunning,
  kEvicted,
  kTerminated,
};

enum class AllocationKind {
  kSpot,
  kOnDemand,
};

// One granted allocation: a set of `count` identical instances acquired
// together (the paper's atomic "allocation" unit).
struct Allocation {
  AllocationId id = kInvalidAllocation;
  AllocationKind kind = AllocationKind::kSpot;
  MarketKey market;
  int count = 0;
  Money bid = 0.0;  // Meaningless for on-demand.
  SimTime start = 0.0;
  AllocationState state = AllocationState::kRunning;
  SimTime end = 0.0;  // Valid when state != kRunning.
  // Precomputed from the trace: when the market price first exceeds the
  // bid after `start` (nullopt if never within the trace horizon).
  std::optional<SimTime> eviction_time;

  bool running() const { return state == AllocationState::kRunning; }
  SimTime EndOrInfinity() const;
  // Start of the billing hour containing time t (t >= start).
  SimTime HourStart(SimTime t) const;
  // End of the billing hour containing time t.
  SimTime HourEnd(SimTime t) const;
};

struct BillingBreakdown {
  Money charged = 0.0;       // Total dollars billed.
  Money refunded = 0.0;      // Dollars refunded due to eviction.
  double paid_hours = 0.0;   // Instance-hours paid for.
  double free_hours = 0.0;   // Instance-hours used but refunded.
};

class SpotMarket {
 public:
  SpotMarket(const InstanceTypeCatalog& catalog, const TraceStore& traces);

  // Current market price for a spot market.
  Money PriceAt(const MarketKey& key, SimTime t) const;

  // Requests a spot allocation at time t. Returns nullopt when the
  // current market price exceeds the bid (request not granted), or when
  // the market has a finite capacity and granting `count` more instances
  // would exceed it (capacity contention between concurrent claimants).
  std::optional<AllocationId> RequestSpot(const MarketKey& key, int count, Money bid, SimTime t);

  // Launches on-demand instances (always granted).
  AllocationId RequestOnDemand(const MarketKey& key, int count, SimTime t);

  // --- Finite capacity (multi-tenant contention) ---
  //
  // By default every spot market has unlimited supply: any bid at or
  // above the market price is granted, which is the right model for one
  // job bidding alone (§2). A fleet of concurrent claimants shares a
  // finite pool, so a market may be given a capacity: RequestSpot then
  // declines once running spot instances would exceed it. The running
  // count tracks state transitions (Terminate / MarkEvicted / Revoke
  // release instances); drivers that advance simulated time are
  // responsible for applying due price evictions via MarkEvicted, as
  // before.
  void SetCapacity(const MarketKey& key, int max_instances);
  // Capacity for the market; nullopt = unlimited.
  std::optional<int> CapacityOf(const MarketKey& key) const;
  // Spot instances currently running in the market.
  int RunningCount(const MarketKey& key) const;

  // User-initiated termination at time t.
  void Terminate(AllocationId id, SimTime t);

  // Marks an allocation evicted at its precomputed eviction time. Called
  // by drivers once simulated time passes the eviction instant.
  void MarkEvicted(AllocationId id);

  // Provider-side revocation at an arbitrary time t (capacity reclaim in
  // a finite-capacity market, as opposed to the trace's price crossing).
  // Eviction billing semantics apply: the in-progress hour is refunded.
  void Revoke(AllocationId id, SimTime t);

  const Allocation& Get(AllocationId id) const;
  Allocation& GetMutable(AllocationId id);
  const std::vector<Allocation>& allocations() const { return allocations_; }

  // Eviction warning time (eviction_time - 2 min, clamped to start).
  std::optional<SimTime> WarningTime(AllocationId id) const;

  // Bill for an allocation, final or as-of time t for running ones.
  // Spot-hour rule: hour h is charged at PriceAt(hour start); eviction
  // refunds the hour in progress; user termination pays it in full.
  BillingBreakdown Bill(AllocationId id, SimTime as_of) const;

  // Aggregate bill over all allocations as of time t.
  BillingBreakdown TotalBill(SimTime as_of) const;

  const InstanceTypeCatalog& catalog() const { return catalog_; }
  const TraceStore& traces() const { return traces_; }

 private:
  void Release(const Allocation& alloc);

  const InstanceTypeCatalog& catalog_;
  const TraceStore& traces_;
  std::vector<Allocation> allocations_;
  std::map<MarketKey, int> capacity_;  // Absent key = unlimited.
  std::map<MarketKey, int> running_spot_;
};

}  // namespace proteus

#endif  // SRC_MARKET_SPOT_MARKET_H_
