#include "src/market/serverless_tier.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace proteus {
namespace {

std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
}

}  // namespace

const char* ServerlessRevocationCauseName(ServerlessRevocationCause cause) {
  switch (cause) {
    case ServerlessRevocationCause::kNone:
      return "none";
    case ServerlessRevocationCause::kBurstCap:
      return "burst-cap";
    case ServerlessRevocationCause::kStorm:
      return "storm";
    case ServerlessRevocationCause::kCapacity:
      return "capacity";
  }
  return "?";
}

ServerlessTier::ServerlessTier(ServerlessTierConfig config) : config_(config) {
  PROTEUS_CHECK_GT(config_.max_burst, 0.0);
  PROTEUS_CHECK_GE(config_.storm_victim_fraction, 0.0);
  PROTEUS_CHECK_LE(config_.storm_victim_fraction, 1.0);
  Rng rng(config_.seed);
  capacity_ = GenerateCapacityTrace(config_.capacity, config_.horizon, rng);
  // Storm schedule: Poisson arrivals over the horizon; fractions jitter
  // around the configured mean so storms differ in severity.
  if (config_.storms_per_day > 0) {
    const double mean_gap = kDay / config_.storms_per_day;
    SimTime t = rng.ExponentialMean(mean_gap);
    while (t < config_.horizon) {
      const double jitter = rng.Uniform(0.75, 1.25);
      storms_.push_back(
          {t, std::min(1.0, config_.storm_victim_fraction * jitter)});
      t += rng.ExponentialMean(mean_gap);
    }
  }
}

bool ServerlessTier::StormHits(AllocationId id, std::size_t storm_index) const {
  // Keyed by (seed, allocation id, storm index): reproducible and
  // independent of how many other allocations exist or when they were
  // requested.
  Rng draw(HashCombine(config_.seed,
                       HashCombine(static_cast<std::uint64_t>(id),
                                   0xC0FFEEULL + storm_index)));
  return draw.Bernoulli(storms_[storm_index].victim_fraction);
}

std::optional<AllocationId> ServerlessTier::Request(int count, SimTime t) {
  PROTEUS_CHECK_GT(count, 0);
  const int claimed = running_ + count;
  if (claimed > capacity_.SlotsAt(t)) {
    return std::nullopt;  // Pool too squeezed right now.
  }
  ServerlessAllocation alloc;
  alloc.id = static_cast<AllocationId>(allocations_.size());
  alloc.count = count;
  alloc.start = t;
  alloc.claimed_level = claimed;

  // Burst cap: even an undisturbed allocation ends here.
  alloc.revocation_time = t + config_.max_burst;
  alloc.revocation_cause = ServerlessRevocationCause::kBurstCap;

  // First storm (strictly after start) that draws this allocation.
  for (std::size_t k = 0; k < storms_.size(); ++k) {
    if (storms_[k].at <= t) {
      continue;
    }
    if (storms_[k].at >= alloc.revocation_time) {
      break;  // Sorted by time; later storms cannot fire earlier.
    }
    if (StormHits(alloc.id, k)) {
      alloc.revocation_time = storms_[k].at;
      alloc.revocation_cause = ServerlessRevocationCause::kStorm;
      break;
    }
  }

  // Capacity crossing below the claimed level (LIFO: the newest
  // allocation holds the highest claim, so it is squeezed out first).
  const std::optional<SimTime> squeeze =
      capacity_.FirstTimeBelow(claimed, t, config_.horizon);
  if (squeeze.has_value() && *squeeze < alloc.revocation_time) {
    alloc.revocation_time = *squeeze;
    alloc.revocation_cause = ServerlessRevocationCause::kCapacity;
  }

  allocations_.push_back(alloc);
  running_ += count;
  return alloc.id;
}

void ServerlessTier::Terminate(AllocationId id, SimTime t) {
  PROTEUS_CHECK_GE(id, 0);
  PROTEUS_CHECK_LT(static_cast<std::size_t>(id), allocations_.size());
  ServerlessAllocation& alloc = allocations_[static_cast<std::size_t>(id)];
  PROTEUS_CHECK(alloc.running()) << "terminating non-running serverless allocation " << id;
  PROTEUS_CHECK_GE(t, alloc.start);
  running_ -= alloc.count;
  PROTEUS_CHECK_GE(running_, 0);
  if (alloc.revocation_time <= t) {
    // The provider got there first; the caller should have observed the
    // revocation. Record it at the earlier instant.
    alloc.state = AllocationState::kEvicted;
    alloc.end = alloc.revocation_time;
    return;
  }
  alloc.state = AllocationState::kTerminated;
  alloc.end = t;
  alloc.revocation_cause = ServerlessRevocationCause::kNone;
}

void ServerlessTier::MarkRevoked(AllocationId id) {
  PROTEUS_CHECK_GE(id, 0);
  PROTEUS_CHECK_LT(static_cast<std::size_t>(id), allocations_.size());
  ServerlessAllocation& alloc = allocations_[static_cast<std::size_t>(id)];
  PROTEUS_CHECK(alloc.running()) << "revoking non-running serverless allocation " << id;
  running_ -= alloc.count;
  PROTEUS_CHECK_GE(running_, 0);
  alloc.state = AllocationState::kEvicted;
  alloc.end = alloc.revocation_time;
}

const ServerlessAllocation& ServerlessTier::Get(AllocationId id) const {
  PROTEUS_CHECK_GE(id, 0);
  PROTEUS_CHECK_LT(static_cast<std::size_t>(id), allocations_.size());
  return allocations_[static_cast<std::size_t>(id)];
}

Money ServerlessTier::Bill(AllocationId id, SimTime as_of) const {
  const ServerlessAllocation& alloc = Get(id);
  const SimTime effective_end =
      alloc.running() ? as_of : std::min(as_of, alloc.end);
  if (effective_end <= alloc.start) {
    return 0.0;
  }
  // Round the used duration up to the billing granularity; no minimum
  // charge, no refunds — you pay for exactly what ran.
  const SimDuration used = effective_end - alloc.start;
  const double ticks = std::ceil(used / config_.billing_granularity);
  const SimDuration billed = ticks * config_.billing_granularity;
  return config_.rate_per_slot_hour * alloc.count * (billed / kHour);
}

Money ServerlessTier::TotalBill(SimTime as_of) const {
  Money total = 0.0;
  for (const auto& alloc : allocations_) {
    total += Bill(alloc.id, as_of);
  }
  return total;
}

}  // namespace proteus
