// Serverless / burstable ultra-transient capacity tier.
//
// The third reliability tier below spot (§7 Discussion direction): cheap
// function-style burstable slots carved out of a shared pool. Three
// properties distinguish it from the spot and preemptible markets:
//
//   1. ZERO eviction warning. There is deliberately no WarningTime()
//      API on this class: a serverless slot is simply gone the instant
//      the provider reclaims it. Consumers must treat every loss as a
//      silent failure caught only by the heartbeat detector — a warned
//      drain of a serverless allocation is a bug by construction.
//   2. Per-slot burstable duration limits. Every allocation is capped at
//      `max_burst`; even an undisturbed slot is reclaimed at
//      start + max_burst (Lambda-style max execution time).
//   3. Correlated mass revocations. Besides gradual capacity pressure
//      (the CapacityTrace dipping below the claimed level), the tier
//      schedules seeded *storm* events at which a large fraction of all
//      running slots vanishes in one instant — the provider rebalancing
//      the pool under higher-priority load. Victim draws are keyed by
//      (seed, allocation id, storm index), so runs are reproducible and
//      independent of request interleaving.
//
// Determinism: the capacity trace, the storm schedule, and every
// allocation's revocation instant are fixed at construction/request time
// from the config seed. Drivers advance simulated time and apply due
// revocations via MarkRevoked, exactly like SpotMarket::MarkEvicted.
#ifndef SRC_MARKET_SERVERLESS_TIER_H_
#define SRC_MARKET_SERVERLESS_TIER_H_

#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/market/capacity_trace.h"
#include "src/market/spot_market.h"  // AllocationState.

namespace proteus {

struct ServerlessTierConfig {
  // Flat internal charge-back rate per slot-hour; far below spot. There
  // is no auction — what varies is reliability, not price.
  Money rate_per_slot_hour = 0.012;
  // Per-second billing, no minimum, no refunds: serverless bills for
  // exactly what ran.
  SimDuration billing_granularity = kSecond;
  // Burstable duration cap per allocation (Lambda-style max lifetime).
  SimDuration max_burst = 45 * kMinute;
  // Background capacity dynamics of the shared pool.
  CapacityTraceConfig capacity;
  SimDuration horizon = 48 * kHour;
  // Correlated mass-revocation storms: Poisson arrivals; at each storm a
  // Bernoulli(victim_fraction) draw per running allocation decides who
  // vanishes — in one instant, with no warning.
  double storms_per_day = 2.0;
  double storm_victim_fraction = 0.6;
  std::uint64_t seed = 42;
};

// A scheduled correlated revocation event.
struct StormEvent {
  SimTime at = 0.0;
  double victim_fraction = 0.0;
};

// Why a precomputed revocation fires (for per-tier accounting/tests).
enum class ServerlessRevocationCause {
  kNone,      // Terminated by the user before any revocation.
  kBurstCap,  // Hit the burstable duration limit.
  kStorm,     // Victim of a correlated storm event.
  kCapacity,  // Pool capacity dipped below the claimed level.
};

const char* ServerlessRevocationCauseName(ServerlessRevocationCause cause);

struct ServerlessAllocation {
  AllocationId id = kInvalidAllocation;
  int count = 0;
  SimTime start = 0.0;
  // Precomputed at request time (always set — the burst cap guarantees
  // an end): min(burst cap, first storm that draws this allocation,
  // first capacity crossing below the claimed level).
  SimTime revocation_time = 0.0;
  ServerlessRevocationCause revocation_cause = ServerlessRevocationCause::kNone;
  // Pool level this allocation claimed at grant (running slots after the
  // grant, LIFO): when available capacity drops below it, this — the
  // newest — allocation is reclaimed first.
  int claimed_level = 0;
  AllocationState state = AllocationState::kRunning;
  SimTime end = 0.0;  // Valid when state != kRunning.

  bool running() const { return state == AllocationState::kRunning; }
};

class ServerlessTier {
 public:
  explicit ServerlessTier(ServerlessTierConfig config);

  // Requests `count` burstable slots at time t. Declines (nullopt) when
  // the pool lacks capacity for the claimed level. On grant, the
  // revocation instant and cause are precomputed deterministically.
  std::optional<AllocationId> Request(int count, SimTime t);

  // User-initiated release. If the precomputed revocation already
  // passed, the provider got there first: recorded as revoked instead.
  void Terminate(AllocationId id, SimTime t);

  // Applies a due revocation (drivers call this once simulated time
  // reaches revocation_time). No warning precedes it — ever.
  void MarkRevoked(AllocationId id);

  const ServerlessAllocation& Get(AllocationId id) const;
  const std::vector<ServerlessAllocation>& allocations() const { return allocations_; }

  // Slots currently running across the tier.
  int RunningCount() const { return running_; }

  // Pool capacity available at time t (before subtracting claims).
  int SlotsAt(SimTime t) const { return capacity_.SlotsAt(t); }

  // Per-second billing at the flat rate; no minimum, no refunds.
  Money Bill(AllocationId id, SimTime as_of) const;
  Money TotalBill(SimTime as_of) const;

  const CapacityTrace& capacity_trace() const { return capacity_; }
  const std::vector<StormEvent>& storms() const { return storms_; }
  const ServerlessTierConfig& config() const { return config_; }

 private:
  // Deterministic Bernoulli victim draw for (allocation, storm) pairs.
  bool StormHits(AllocationId id, std::size_t storm_index) const;

  ServerlessTierConfig config_;
  CapacityTrace capacity_;
  std::vector<StormEvent> storms_;
  std::vector<ServerlessAllocation> allocations_;
  int running_ = 0;
};

}  // namespace proteus

#endif  // SRC_MARKET_SERVERLESS_TIER_H_
