// EC2-style instance catalog. Prices are the 2016 US-EAST-1 on-demand
// rates for the families the paper uses.
#ifndef SRC_MARKET_INSTANCE_TYPE_H_
#define SRC_MARKET_INSTANCE_TYPE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace proteus {

struct InstanceType {
  std::string name;
  int vcpus = 0;
  double memory_gb = 0.0;
  Money on_demand_price = 0.0;  // Dollars per instance-hour.

  // Work produced per hour: the paper's nu is proportional to core count
  // (footnote 7: nu of a c4.2xlarge == 2 * nu of a c4.xlarge).
  WorkUnits WorkPerHour() const { return static_cast<WorkUnits>(vcpus); }
};

// Immutable catalog of known instance types.
class InstanceTypeCatalog {
 public:
  // Catalog preloaded with the types used in the paper's evaluation:
  // c4.large/xlarge/2xlarge/4xlarge and m4.xlarge/2xlarge.
  static InstanceTypeCatalog Default();

  void Add(InstanceType type);

  const InstanceType* Find(const std::string& name) const;
  // CHECK-fails when the type is unknown.
  const InstanceType& Get(const std::string& name) const;

  const std::vector<InstanceType>& types() const { return types_; }

 private:
  std::vector<InstanceType> types_;
};

}  // namespace proteus

#endif  // SRC_MARKET_INSTANCE_TYPE_H_
