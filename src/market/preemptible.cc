#include "src/market/preemptible.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace proteus {

PreemptibleMarket::PreemptibleMarket(const InstanceTypeCatalog& catalog,
                                     PreemptibleConfig config, std::uint64_t seed)
    : catalog_(catalog), config_(config), rng_(seed) {
  PROTEUS_CHECK_GT(config.discount, 0.0);
  PROTEUS_CHECK_LT(config.discount, 1.0);
}

Money PreemptibleMarket::PricePerHour(const std::string& instance_type) const {
  return catalog_.Get(instance_type).on_demand_price * (1.0 - config_.discount);
}

AllocationId PreemptibleMarket::Request(const std::string& instance_type, int count, SimTime t) {
  PROTEUS_CHECK_GT(count, 0);
  catalog_.Get(instance_type);  // Validate.
  PreemptibleAllocation alloc;
  alloc.id = static_cast<AllocationId>(allocations_.size());
  alloc.instance_type = instance_type;
  alloc.count = count;
  alloc.start = t;
  // Revocation: min(Poisson hazard draw, 24-hour cap). All instances in
  // the allocation share fate (they back one gang-scheduled job).
  const double hazard_mean_hours = 1.0 / std::max(config_.revocations_per_hour, 1e-9);
  const SimDuration hazard = rng_.ExponentialMean(hazard_mean_hours * kHour);
  alloc.revocation_time = t + std::min(hazard, config_.max_lifetime);
  allocations_.push_back(alloc);
  return alloc.id;
}

void PreemptibleMarket::Terminate(AllocationId id, SimTime t) {
  PROTEUS_CHECK_GE(id, 0);
  PROTEUS_CHECK_LT(static_cast<std::size_t>(id), allocations_.size());
  PreemptibleAllocation& alloc = allocations_[static_cast<std::size_t>(id)];
  PROTEUS_CHECK(alloc.running());
  if (alloc.revocation_time <= t) {
    alloc.state = AllocationState::kEvicted;
    alloc.end = alloc.revocation_time;
    return;
  }
  alloc.state = AllocationState::kTerminated;
  alloc.end = t;
}

void PreemptibleMarket::MarkRevoked(AllocationId id) {
  PROTEUS_CHECK_GE(id, 0);
  PROTEUS_CHECK_LT(static_cast<std::size_t>(id), allocations_.size());
  PreemptibleAllocation& alloc = allocations_[static_cast<std::size_t>(id)];
  PROTEUS_CHECK(alloc.running());
  alloc.state = AllocationState::kEvicted;
  alloc.end = alloc.revocation_time;
}

const PreemptibleAllocation& PreemptibleMarket::Get(AllocationId id) const {
  PROTEUS_CHECK_GE(id, 0);
  PROTEUS_CHECK_LT(static_cast<std::size_t>(id), allocations_.size());
  return allocations_[static_cast<std::size_t>(id)];
}

SimTime PreemptibleMarket::WarningTime(AllocationId id) const {
  const PreemptibleAllocation& alloc = Get(id);
  return std::max(alloc.start, alloc.revocation_time - config_.warning);
}

Money PreemptibleMarket::Bill(AllocationId id, SimTime as_of) const {
  const PreemptibleAllocation& alloc = Get(id);
  SimTime end = alloc.running() ? as_of : std::min(alloc.end, as_of);
  if (end <= alloc.start) {
    return 0.0;
  }
  SimDuration used = end - alloc.start;
  used = std::max(used, config_.minimum_charge);
  // Round up to the billing granularity.
  used = std::ceil(used / config_.billing_granularity) * config_.billing_granularity;
  return PricePerHour(alloc.instance_type) * alloc.count * (used / kHour);
}

Money PreemptibleMarket::TotalBill(SimTime as_of) const {
  Money total = 0.0;
  for (const auto& alloc : allocations_) {
    total += Bill(alloc.id, as_of);
  }
  return total;
}

}  // namespace proteus
