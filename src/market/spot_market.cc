#include "src/market/spot_market.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace proteus {

SimTime Allocation::EndOrInfinity() const {
  return running() ? std::numeric_limits<SimTime>::infinity() : end;
}

SimTime Allocation::HourStart(SimTime t) const {
  PROTEUS_CHECK_GE(t, start);
  const double hours = std::floor((t - start) / kHour);
  return start + hours * kHour;
}

SimTime Allocation::HourEnd(SimTime t) const { return HourStart(t) + kHour; }

SpotMarket::SpotMarket(const InstanceTypeCatalog& catalog, const TraceStore& traces)
    : catalog_(catalog), traces_(traces) {}

Money SpotMarket::PriceAt(const MarketKey& key, SimTime t) const {
  return traces_.Get(key).PriceAt(t);
}

std::optional<AllocationId> SpotMarket::RequestSpot(const MarketKey& key, int count, Money bid,
                                                    SimTime t) {
  PROTEUS_CHECK_GT(count, 0);
  const PriceSeries& series = traces_.Get(key);
  if (series.PriceAt(t) > bid) {
    return std::nullopt;  // Bid below market: not granted.
  }
  const auto cap = capacity_.find(key);
  if (cap != capacity_.end() && RunningCount(key) + count > cap->second) {
    return std::nullopt;  // Finite market: not enough capacity left.
  }
  Allocation alloc;
  alloc.id = static_cast<AllocationId>(allocations_.size());
  alloc.kind = AllocationKind::kSpot;
  alloc.market = key;
  alloc.count = count;
  alloc.bid = bid;
  alloc.start = t;
  // The price at t is <= bid, so any crossing is strictly after t.
  alloc.eviction_time =
      series.FirstTimeAbove(bid, t, std::numeric_limits<SimTime>::infinity());
  allocations_.push_back(alloc);
  running_spot_[key] += count;
  return alloc.id;
}

void SpotMarket::SetCapacity(const MarketKey& key, int max_instances) {
  PROTEUS_CHECK_GE(max_instances, 0);
  capacity_[key] = max_instances;
}

std::optional<int> SpotMarket::CapacityOf(const MarketKey& key) const {
  const auto it = capacity_.find(key);
  if (it == capacity_.end()) {
    return std::nullopt;
  }
  return it->second;
}

int SpotMarket::RunningCount(const MarketKey& key) const {
  const auto it = running_spot_.find(key);
  return it == running_spot_.end() ? 0 : it->second;
}

void SpotMarket::Release(const Allocation& alloc) {
  if (alloc.kind != AllocationKind::kSpot) {
    return;
  }
  auto it = running_spot_.find(alloc.market);
  PROTEUS_CHECK(it != running_spot_.end());
  it->second -= alloc.count;
  PROTEUS_CHECK_GE(it->second, 0);
}

AllocationId SpotMarket::RequestOnDemand(const MarketKey& key, int count, SimTime t) {
  PROTEUS_CHECK_GT(count, 0);
  catalog_.Get(key.instance_type);  // Validate type.
  Allocation alloc;
  alloc.id = static_cast<AllocationId>(allocations_.size());
  alloc.kind = AllocationKind::kOnDemand;
  alloc.market = key;
  alloc.count = count;
  alloc.start = t;
  allocations_.push_back(alloc);
  return alloc.id;
}

void SpotMarket::Terminate(AllocationId id, SimTime t) {
  Allocation& alloc = GetMutable(id);
  PROTEUS_CHECK(alloc.running()) << "terminating non-running allocation " << id;
  PROTEUS_CHECK_GE(t, alloc.start);
  Release(alloc);
  if (alloc.eviction_time.has_value() && *alloc.eviction_time <= t) {
    // The market got there first; the caller should have observed the
    // eviction. Treat as evicted at the earlier instant.
    alloc.state = AllocationState::kEvicted;
    alloc.end = *alloc.eviction_time;
    return;
  }
  alloc.state = AllocationState::kTerminated;
  alloc.end = t;
}

void SpotMarket::MarkEvicted(AllocationId id) {
  Allocation& alloc = GetMutable(id);
  PROTEUS_CHECK(alloc.running());
  PROTEUS_CHECK(alloc.eviction_time.has_value());
  Release(alloc);
  alloc.state = AllocationState::kEvicted;
  alloc.end = *alloc.eviction_time;
}

void SpotMarket::Revoke(AllocationId id, SimTime t) {
  Allocation& alloc = GetMutable(id);
  PROTEUS_CHECK(alloc.running()) << "revoking non-running allocation " << id;
  PROTEUS_CHECK_GE(t, alloc.start);
  Release(alloc);
  alloc.state = AllocationState::kEvicted;
  alloc.end = t;
}

const Allocation& SpotMarket::Get(AllocationId id) const {
  PROTEUS_CHECK_GE(id, 0);
  PROTEUS_CHECK_LT(static_cast<std::size_t>(id), allocations_.size());
  return allocations_[static_cast<std::size_t>(id)];
}

Allocation& SpotMarket::GetMutable(AllocationId id) {
  PROTEUS_CHECK_GE(id, 0);
  PROTEUS_CHECK_LT(static_cast<std::size_t>(id), allocations_.size());
  return allocations_[static_cast<std::size_t>(id)];
}

std::optional<SimTime> SpotMarket::WarningTime(AllocationId id) const {
  const Allocation& alloc = Get(id);
  if (!alloc.eviction_time.has_value()) {
    return std::nullopt;
  }
  return std::max(alloc.start, *alloc.eviction_time - kEvictionWarning);
}

BillingBreakdown SpotMarket::Bill(AllocationId id, SimTime as_of) const {
  const Allocation& alloc = Get(id);
  BillingBreakdown bill;
  const SimTime effective_end = std::min(as_of, alloc.EndOrInfinity());
  if (effective_end <= alloc.start) {
    return bill;
  }
  const bool evicted = alloc.state == AllocationState::kEvicted && alloc.end <= as_of;
  const PriceSeries* series =
      alloc.kind == AllocationKind::kSpot ? &traces_.Get(alloc.market) : nullptr;
  const Money od_price = catalog_.Get(alloc.market.instance_type).on_demand_price;

  for (SimTime hour_start = alloc.start; hour_start < effective_end; hour_start += kHour) {
    const Money rate = series != nullptr ? series->PriceAt(hour_start) : od_price;
    const Money hour_charge = rate * alloc.count;
    const SimTime hour_end = hour_start + kHour;
    const bool last_hour = hour_end >= effective_end;
    const double used_fraction =
        last_hour ? (effective_end - hour_start) / kHour : 1.0;
    if (last_hour && evicted) {
      // Refund: the hour in progress at eviction is free.
      bill.refunded += hour_charge;
      bill.free_hours += used_fraction * alloc.count;
    } else {
      bill.charged += hour_charge;
      bill.paid_hours += alloc.count;  // Full hour billed even if partial.
    }
  }
  return bill;
}

BillingBreakdown SpotMarket::TotalBill(SimTime as_of) const {
  BillingBreakdown total;
  for (const auto& alloc : allocations_) {
    const BillingBreakdown one = Bill(alloc.id, as_of);
    total.charged += one.charged;
    total.refunded += one.refunded;
    total.paid_hours += one.paid_hours;
    total.free_hours += one.free_hours;
  }
  return total;
}

}  // namespace proteus
