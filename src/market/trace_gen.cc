#include "src/market/trace_gen.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/logging.h"

namespace proteus {

PriceSeries GenerateSyntheticTrace(const InstanceType& type, SimDuration duration,
                                   const SyntheticTraceConfig& config, Rng& rng) {
  PROTEUS_CHECK_GT(duration, 0.0);
  PROTEUS_CHECK_GT(config.step, 0.0);
  const Money od = type.on_demand_price;
  const double log_base = std::log(od * config.base_fraction);
  const Money floor = od * config.floor_fraction;

  // Pre-draw spike intervals: (start, end, peak multiple).
  struct Spike {
    SimTime start;
    SimTime end;
    Money peak;
  };
  std::vector<Spike> spikes;
  const double spike_rate = config.spikes_per_day / kDay;  // Per second.
  SimTime t = 0.0;
  while (spike_rate > 0.0) {
    t += rng.ExponentialMean(1.0 / spike_rate);
    if (t >= duration) {
      break;
    }
    const double log_min = std::log(config.spike_multiple_min);
    const double log_max = std::log(config.spike_multiple_max);
    const double multiple = std::exp(rng.Uniform(log_min, log_max));
    const SimDuration len = std::max(config.step, rng.ExponentialMean(config.spike_duration_mean));
    spikes.push_back({t, t + len, od * multiple});
  }

  PriceSeries series;
  double log_price = log_base;
  Money last_emitted = -1.0;
  for (SimTime now = 0.0; now < duration; now += config.step) {
    // Quiet-regime OU step.
    log_price += config.reversion * (log_base - log_price) + rng.Normal(0.0, config.volatility);
    Money price = std::exp(log_price);
    // Spike overlay: while inside a spike window, the price ramps to the
    // peak and decays linearly — crossings happen at window edges.
    for (const Spike& spike : spikes) {
      if (now >= spike.start && now < spike.end) {
        price = std::max(price, spike.peak);
        break;
      }
    }
    price = std::max(price, floor);
    // Round to tenth-of-a-cent like AWS price feeds.
    price = std::round(price * 1000.0) / 1000.0;
    if (price != last_emitted) {
      series.Append(now, price);
      last_emitted = price;
    }
  }
  if (series.empty()) {
    series.Append(0.0, std::max(floor, std::exp(log_base)));
  }
  return series;
}

}  // namespace proteus
