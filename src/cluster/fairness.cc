#include "src/cluster/fairness.h"

#include <cmath>

namespace proteus {
namespace cluster {

double JainIndex(const std::vector<double>& values) {
  if (values.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

double UtilitarianWelfare(const std::vector<double>& values) {
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  return sum;
}

double NashWelfare(const std::vector<double>& values) {
  double sum = 0.0;
  for (const double v : values) {
    sum += std::log1p(v < 0.0 ? 0.0 : v);
  }
  return sum;
}

}  // namespace cluster
}  // namespace proteus
