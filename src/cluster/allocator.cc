#include "src/cluster/allocator.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "src/cluster/karma.h"
#include "src/common/logging.h"

namespace proteus {
namespace cluster {

std::vector<int> RotatingFairShares(int round, int capacity, int n) {
  PROTEUS_CHECK_GE(capacity, 0);
  PROTEUS_CHECK_GT(n, 0);
  const int base = capacity / n;
  const int remainder = capacity % n;
  std::vector<int> shares(static_cast<std::size_t>(n), base);
  // Rotate the remainder across indices so every claimant sees the extra
  // slot equally often over time.
  for (int k = 0; k < remainder; ++k) {
    shares[static_cast<std::size_t>((round + k) % n)] += 1;
  }
  return shares;
}

std::vector<SlotGrant> StaticFairShareAllocator::Allocate(int round, int capacity,
                                                          const std::vector<SlotDemand>& demands) {
  std::vector<SlotGrant> grants(demands.size());
  if (demands.empty()) {
    return grants;
  }
  const std::vector<int> shares =
      RotatingFairShares(round, capacity, static_cast<int>(demands.size()));
  for (std::size_t i = 0; i < demands.size(); ++i) {
    grants[i].slots = std::min(demands[i].slots, shares[i]);
  }
  return grants;
}

std::vector<SlotGrant> GreedyMaxBidAllocator::Allocate(int round, int capacity,
                                                       const std::vector<SlotDemand>& demands) {
  (void)round;
  std::vector<SlotGrant> grants(demands.size());
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (demands[a].slots != demands[b].slots) {
      return demands[a].slots > demands[b].slots;
    }
    return demands[a].tenant < demands[b].tenant;
  });
  int remaining = capacity;
  for (const std::size_t i : order) {
    const int take = std::min(demands[i].slots, remaining);
    grants[i].slots = take;
    remaining -= take;
    if (remaining == 0) {
      break;
    }
  }
  return grants;
}

std::unique_ptr<Allocator> MakeAllocator(const std::string& spec, std::string* error) {
  auto fail = [&](const std::string& message) -> std::unique_ptr<Allocator> {
    if (error != nullptr) {
      *error = message;
    }
    return nullptr;
  };
  if (spec == "fair" || spec == "fair_share") {
    return std::make_unique<StaticFairShareAllocator>();
  }
  if (spec == "greedy") {
    return std::make_unique<GreedyMaxBidAllocator>();
  }
  if (spec == "karma") {
    return std::make_unique<KarmaAllocator>();
  }
  constexpr const char* kKarmaInit = "karma:init=";
  if (spec.rfind(kKarmaInit, 0) == 0) {
    const std::string arg = spec.substr(std::string(kKarmaInit).size());
    char* end = nullptr;
    const long credits = std::strtol(arg.c_str(), &end, 10);
    if (arg.empty() || end == nullptr || *end != '\0' || credits < 0) {
      return fail("bad karma init credits: \"" + arg + "\"");
    }
    KarmaConfig config;
    config.init_credits = credits;
    return std::make_unique<KarmaAllocator>(config);
  }
  return fail("unknown allocator spec: \"" + spec +
              "\" (want fair | greedy | karma | karma:init=<n>)");
}

}  // namespace cluster
}  // namespace proteus
