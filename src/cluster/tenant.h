// TenantSpec: one job in the multi-tenant fleet (DESIGN.md §14).
//
// A tenant is a slot-hours-sized job with an arrival time, an optional
// deadline and cancellation point, a scalability cap, a duty cycle
// (dynamic demand: active bursts separated by idle rounds, drawn from
// the tenant's own seeded stream), and a demand-reporting strategy —
// truthful, adversarial (inflating or always-max), or policy-driven
// through a per-tenant BidBrain over the shared price trace (the
// src/bidbrain demand seam).
#ifndef SRC_CLUSTER_TENANT_H_
#define SRC_CLUSTER_TENANT_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "src/bidbrain/bidbrain.h"
#include "src/bidbrain/demand.h"
#include "src/common/types.h"

namespace proteus {
namespace cluster {

inline constexpr SimTime kNoDeadline = std::numeric_limits<SimTime>::infinity();

enum class DemandStrategy {
  kTruthful,   // Reports exactly what it can use.
  kInflate,    // Reports inflate_factor x true need.
  kAlwaysMax,  // Reports inflate_factor x max_slots every round.
  kBidBrain,   // Policy-driven through a per-tenant BidBrain.
};

const char* DemandStrategyName(DemandStrategy strategy);

struct TenantSpec {
  std::string name;
  // Total work, in slot-hours (one slot running one hour = one unit).
  double slot_hours = 16.0;
  // Absolute simulation times. A tenant is admitted at the first round
  // boundary at or after `arrival` and retired at the first boundary at
  // or after `cancel_at` (work stops at cancel_at itself).
  SimTime arrival = 0.0;
  SimTime deadline = kNoDeadline;
  std::optional<SimTime> cancel_at;
  // Scalability cap: the most slots the tenant can use in one round.
  int max_slots = 16;
  // Demand floor during idle duty-cycle rounds.
  int idle_slots = 0;
  // Fraction of rounds the tenant is active (Bernoulli per round from
  // the tenant's stream). 1.0 = always active.
  double active_fraction = 1.0;
  DemandStrategy strategy = DemandStrategy::kTruthful;
  double inflate_factor = 2.0;
  // Seed salt for the tenant's private stream; 0 derives it from the
  // name. Adversarial/truthful twins share a salt so their true demand
  // trajectories are identical.
  std::uint64_t demand_seed = 0;
};

struct TenantResult {
  std::string name;
  std::string strategy;
  int tenant = 0;
  bool admitted = false;
  bool completed = false;
  bool cancelled = false;
  bool deadline_met = false;
  SimTime completion_time = 0.0;  // Valid when completed.
  double allocated_hours = 0.0;   // Slot-hours granted (held x time).
  double useful_hours = 0.0;      // Slot-hours that produced work.
  double borrowed_hours = 0.0;    // Slot-hours beyond fair share.
  double reported_slot_rounds = 0.0;
  double true_slot_rounds = 0.0;
  Money cost = 0.0;               // This tenant's share of the market bill.
  int preempted_slots = 0;        // Slots reclaimed while still wanted.
  int evictions = 0;              // Mid-round market evictions suffered.
  std::int64_t credits_final = 0; // Balance at retirement/horizon (Karma).
};

// Builds the reporter implementing the spec's strategy. For kBidBrain,
// `policy` must be the tenant's acquisition policy (non-null, outliving
// the reporter); other strategies ignore it.
std::unique_ptr<DemandReporter> MakeDemandReporter(const TenantSpec& spec,
                                                   const AcquisitionPolicy* policy,
                                                   const MarketKey& slot_market, Money slot_bid);

// The tenant's true need for the coming round: enough slots to finish
// the remaining work this round, clamped to the scalability cap —
// or the idle floor when the duty cycle has the tenant idle.
int TrueNeedSlots(const TenantSpec& spec, double remaining_slot_hours, SimDuration round,
                  double phi, bool active);

// Per-tenant stream seed: FNV-1a over the fleet seed and the spec's
// demand_seed (or name when 0), so a tenant's randomness is independent
// of fleet composition, scheduling, and thread count.
std::uint64_t TenantStreamSeed(std::uint64_t fleet_seed, const TenantSpec& spec);

}  // namespace cluster
}  // namespace proteus

#endif  // SRC_CLUSTER_TENANT_H_
