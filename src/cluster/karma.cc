#include "src/cluster/karma.h"

#include <algorithm>

#include "src/common/logging.h"

namespace proteus {
namespace cluster {

KarmaAllocator::KarmaAllocator(KarmaConfig config) : config_(config) {
  PROTEUS_CHECK_GE(config_.init_credits, 0);
}

void KarmaAllocator::OnTenantAdmitted(int tenant) {
  PROTEUS_CHECK(balances_.find(tenant) == balances_.end())
      << "tenant " << tenant << " admitted twice";
  balances_[tenant] = config_.init_credits;
  minted_ += config_.init_credits;
}

void KarmaAllocator::OnTenantRetired(int tenant) {
  const auto it = balances_.find(tenant);
  PROTEUS_CHECK(it != balances_.end()) << "retiring unknown tenant " << tenant;
  retired_ += it->second;
  balances_.erase(it);
}

std::int64_t KarmaAllocator::CreditBalance(int tenant) const {
  const auto it = balances_.find(tenant);
  return it == balances_.end() ? 0 : it->second;
}

std::int64_t KarmaAllocator::SumBalances() const {
  std::int64_t sum = 0;
  for (const auto& [tenant, balance] : balances_) {
    sum += balance;
  }
  return sum;
}

bool KarmaAllocator::ConservationHolds() const {
  std::int64_t pending = 0;
  for (const auto& [tenant, credits] : pending_payout_) {
    pending += credits;
  }
  // Escrow covers exactly the pending payouts; everything else is either
  // on a balance or retired.
  return escrow_ == pending && SumBalances() + escrow_ + retired_ == minted_;
}

void KarmaAllocator::FlushPayouts() {
  for (const auto& [tenant, credits] : pending_payout_) {
    escrow_ -= credits;
    const auto it = balances_.find(tenant);
    if (it != balances_.end()) {
      it->second += credits;
    } else {
      // Donor left before its payout landed; the credits retire rather
      // than vanish, keeping the conservation ledger exact.
      retired_ += credits;
    }
  }
  pending_payout_.clear();
  PROTEUS_CHECK_EQ(escrow_, 0);
}

std::vector<SlotGrant> KarmaAllocator::Allocate(int round, int capacity,
                                                const std::vector<SlotDemand>& demands) {
  FlushPayouts();
  std::vector<SlotGrant> grants(demands.size());
  if (demands.empty()) {
    return grants;
  }
  for (std::size_t i = 0; i < demands.size(); ++i) {
    PROTEUS_CHECK(balances_.find(demands[i].tenant) != balances_.end())
        << "demand from unadmitted tenant " << demands[i].tenant;
    if (i > 0) {
      PROTEUS_CHECK_GT(demands[i].tenant, demands[i - 1].tenant)
          << "demands must be sorted by tenant id";
    }
  }

  const std::vector<int> shares =
      RotatingFairShares(round, capacity, static_cast<int>(demands.size()));

  // Guaranteed part + donation pool.
  int pool = 0;
  std::vector<int> want(demands.size(), 0);      // Unmet demand beyond share.
  std::vector<int> donated(demands.size(), 0);   // Unused share, donated.
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const int guaranteed = std::min(demands[i].slots, shares[i]);
    grants[i].slots = guaranteed;
    if (demands[i].slots < shares[i]) {
      donated[i] = shares[i] - demands[i].slots;
      pool += donated[i];
    } else {
      want[i] = demands[i].slots - shares[i];
    }
  }

  // Borrow: water-fill the donation pool one slot at a time, richest
  // borrower first (ties to the lower tenant id). Each borrowed slot
  // spends one credit into escrow.
  std::vector<std::int64_t> spendable(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    spendable[i] = balances_.at(demands[i].tenant);
  }
  int borrowed_total = 0;
  while (pool > 0) {
    std::size_t best = demands.size();
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (want[i] <= 0 || spendable[i] <= 0) {
        continue;
      }
      if (best == demands.size() || spendable[i] > spendable[best]) {
        best = i;
      }
    }
    if (best == demands.size()) {
      break;  // No borrower can pay (or none wants more).
    }
    want[best] -= 1;
    spendable[best] -= 1;
    grants[best].slots += 1;
    grants[best].borrowed += 1;
    pool -= 1;
    borrowed_total += 1;
  }

  // Settle borrower payments into escrow...
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (grants[i].borrowed > 0) {
      balances_[demands[i].tenant] -= grants[i].borrowed;
      escrow_ += grants[i].borrowed;
    }
  }
  // ...and earmark them for the donors whose slots were consumed,
  // slot-matched round-robin in tenant-id order. Paid out next round.
  std::size_t donor = 0;
  int to_assign = borrowed_total;
  while (to_assign > 0) {
    if (donated[donor] > 0) {
      donated[donor] -= 1;
      pending_payout_[demands[donor].tenant] += 1;
      to_assign -= 1;
    }
    donor = (donor + 1) % demands.size();
  }

  PROTEUS_DCHECK(ConservationHolds());
  return grants;
}

}  // namespace cluster
}  // namespace proteus
