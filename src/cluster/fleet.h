// ClusterScheduler: round-based multi-tenant arbitration over one shared
// spot market (DESIGN.md §14).
//
// The scheduler owns the fleet's capacity: a finite slot market (one
// slot == one instance of config.slot_market's type, capacity sampled
// per round from a CapacityTrace or fixed) inside a SpotMarket that
// bills by the market's hourly rules, plus unlimited on-demand for
// deadline-driven top-ups. Each round it:
//   1. retires completed/cancelled tenants and admits arrivals,
//   2. collects one reported demand per tenant (bidbrain demand seam;
//      computed in parallel, one seeded Rng stream per tenant),
//   3. asks the Allocator (Karma / fair-share / greedy) to divide the
//      round's capacity among the reports,
//   4. reconciles market holdings to the grants — shrink pass before
//      grow pass, so concurrent claimants never overdraw the finite
//      market — and tops up with on-demand when a deadline demands it,
//   5. integrates work piecewise over the round (startup prep delay,
//      mid-round price evictions, cancellation instants, completion),
//   6. records per-round, per-tenant accounting: utilization, Jain
//      fairness, credit flows, preemptions, costs.
//
// Determinism: same (specs, allocator, config) => byte-identical
// FleetResult::ToCsv() and Digest() at any config.threads value. All
// randomness lives in per-tenant streams seeded from (config.seed,
// spec); the parallel section touches only per-tenant state; every
// aggregation walks tenants in id order.
#ifndef SRC_CLUSTER_FLEET_H_
#define SRC_CLUSTER_FLEET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/bidbrain/eviction_estimator.h"
#include "src/cluster/allocator.h"
#include "src/cluster/tenant.h"
#include "src/market/capacity_trace.h"
#include "src/market/spot_market.h"
#include "src/obs/ledger.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace proteus {
namespace cluster {

struct FleetConfig {
  SimTime start = 0.0;
  SimDuration round = kHour;  // Billing-aligned when a whole hour.
  int rounds = 48;
  // The shared slot market: one slot == one instance of this type.
  MarketKey slot_market = {"z0", "c4.xlarge"};
  // Spot bid per slot, as a multiple of the type's on-demand price.
  double bid_multiplier = 1.0;
  // Work produced per slot per hour (scaling efficiency).
  double phi = 1.0;
  // Newly granted slots start producing this far into their first round.
  SimDuration prep_delay = 5 * kMinute;
  // Per-round slot capacity: the trace (sampled at each round start)
  // when non-empty, else the fixed value.
  CapacityTrace capacity;
  int fixed_capacity = 32;
  std::uint64_t seed = 2016;
  // Demand fan-out threads; 0 = hardware concurrency. The result is
  // byte-identical at any value.
  int threads = 1;
};

// One row per (round, active tenant): the fleet's CSV unit.
struct TenantRound {
  int round = 0;
  int tenant = 0;
  int reported = 0;
  int true_need = 0;
  int granted = 0;
  int borrowed = 0;
  int held_end = 0;           // Slots still running at round end.
  std::int64_t balance = 0;   // Credit balance after the round (Karma).
  double useful_hours = 0.0;  // Productive slot-hours this round.
};

struct RoundRecord {
  int round = 0;
  SimTime time = 0.0;
  int capacity = 0;
  int active_tenants = 0;
  int reported = 0;   // Sum of reported demands.
  int truthful = 0;   // Sum of true needs.
  int granted = 0;    // Sum of grants (<= capacity).
  int borrowed = 0;
  int on_demand = 0;  // Top-up instances outside the shared pool.
  double useful_hours = 0.0;
  double utilization = 0.0;   // useful_hours / (capacity * round).
  double jain_granted = 1.0;  // Per-round fairness over grants.
  std::int64_t escrow = 0;
  std::int64_t balances = 0;
  bool conservation_ok = true;
  int preempted_slots = 0;
  int evictions = 0;
};

struct FleetResult {
  std::string allocator;
  std::vector<TenantResult> tenants;     // Spec order.
  std::vector<RoundRecord> rounds;       // Round order.
  std::vector<TenantRound> tenant_rounds;  // (round, tenant id) order.
  double mean_utilization = 0.0;
  double jain_long_term = 1.0;   // Over per-tenant total allocated hours.
  double jain_short_term = 1.0;  // Mean of per-round jain_granted.
  double total_useful_hours = 0.0;
  Money total_cost = 0.0;
  int preempted_slots = 0;
  int evictions = 0;

  // Per-(round, tenant) rows plus a final per-tenant summary block;
  // byte-identical for the same inputs at any thread count.
  std::string ToCsv() const;
  // FNV-1a over ToCsv() — the cheap replay-pinning handle.
  std::uint64_t Digest() const;

  const TenantResult* Find(const std::string& name) const;
};

class ClusterScheduler {
 public:
  ClusterScheduler(const InstanceTypeCatalog* catalog, const TraceStore* traces,
                   const EvictionModel* estimator);

  // Optional sinks; recorded only from the sequential sections so
  // output is deterministic. Either pointer may be null.
  void SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);
  void SetLedger(obs::EventLedger* ledger);

  // Runs the tenant mix to the horizon (config.rounds). `allocator` is
  // stateful across rounds (Karma credits) and is driven through its
  // admission/retirement hooks; pass a fresh instance per run.
  FleetResult Run(const std::vector<TenantSpec>& specs, Allocator& allocator,
                  const FleetConfig& config);

 private:
  const InstanceTypeCatalog* catalog_;
  const TraceStore* traces_;
  const EvictionModel* estimator_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::EventLedger* ledger_ = nullptr;
};

}  // namespace cluster
}  // namespace proteus

#endif  // SRC_CLUSTER_FLEET_H_
