// KarmaAllocator: credit-based fair division with donors and borrowers,
// after Karma (Vuppalapati et al.; see SNIPPETS.md "Fair Shares" entry
// and PAPERS.md).
//
// Mechanism, per round:
//  1. Every active tenant owns an equal fair share of the round's
//     capacity (rotating remainder, allocator.h).
//  2. A tenant demanding less than its share is a *donor*: it receives
//     its demand, and its unused share enters the donation pool.
//  3. A tenant demanding more is a *borrower*: beyond its share it may
//     take donated slots, paying one credit per borrowed slot-round.
//     Contested donations go to the borrowers with the most credits
//     (water-filling, richest first, ties to the lower tenant id) —
//     Karma's rule, which is what makes over-reporting unprofitable:
//     every borrowed slot costs a credit whether or not the borrower
//     can actually use it.
//  4. Borrowed-slot payments land in an escrow and are paid out to the
//     round's donors (slot-matched, round-robin by tenant id) at the
//     START of the next round — so between rounds the in-flight credits
//     are visible in Escrow().
//
// Credit conservation is exact and audited: credits are minted only at
// admission (init_credits per tenant), retired when a tenant leaves
// (its balance, plus any later payout it can no longer receive), and
//     sum(balances) + escrow + retired == minted
// holds after every Allocate() call. tests/allocator_test.cc and the
// fleet driver both assert it every round.
#ifndef SRC_CLUSTER_KARMA_H_
#define SRC_CLUSTER_KARMA_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/cluster/allocator.h"

namespace proteus {
namespace cluster {

struct KarmaConfig {
  // Credits minted for each tenant at admission. Non-zero lets young
  // tenants borrow before they have donated anything (Karma's
  // bootstrap); small relative to the run length so it cannot dominate
  // long-run accounting.
  std::int64_t init_credits = 32;
};

class KarmaAllocator : public Allocator {
 public:
  explicit KarmaAllocator(KarmaConfig config = {});

  std::string name() const override { return "karma"; }

  std::vector<SlotGrant> Allocate(int round, int capacity,
                                  const std::vector<SlotDemand>& demands) override;

  void OnTenantAdmitted(int tenant) override;
  void OnTenantRetired(int tenant) override;

  std::int64_t CreditBalance(int tenant) const override;
  std::int64_t SumBalances() const override;
  std::int64_t Escrow() const override { return escrow_; }
  bool ConservationHolds() const override;

  std::int64_t minted() const { return minted_; }
  std::int64_t retired() const { return retired_; }
  const KarmaConfig& config() const { return config_; }

 private:
  // Pays the previous round's escrowed credits out to their donors
  // (or retires them when the donor has since left).
  void FlushPayouts();

  KarmaConfig config_;
  std::map<int, std::int64_t> balances_;        // Active tenants only.
  std::map<int, std::int64_t> pending_payout_;  // Donor -> credits owed.
  std::int64_t escrow_ = 0;
  std::int64_t minted_ = 0;
  std::int64_t retired_ = 0;
};

}  // namespace cluster
}  // namespace proteus

#endif  // SRC_CLUSTER_KARMA_H_
