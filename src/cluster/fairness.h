// Fairness and welfare measures for the multi-tenant evaluation axes
// (after the CS525 "Fair Shares" study: utilization/Pareto efficiency
// vs short- and long-term fairness under greedy users).
#ifndef SRC_CLUSTER_FAIRNESS_H_
#define SRC_CLUSTER_FAIRNESS_H_

#include <vector>

namespace proteus {
namespace cluster {

// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1.0 = perfectly
// equal; 1/n = one claimant has everything. Empty or all-zero inputs
// return 1.0 (nothing is unfairly divided).
double JainIndex(const std::vector<double>& values);

// Utilitarian welfare: the sum. Companion to Jain for the
// efficiency-vs-fairness tradeoff tables.
double UtilitarianWelfare(const std::vector<double>& values);

// Nash welfare (sum of log(1 + x)): rewards spreading allocation across
// claimants; a mechanism that starves one tenant scores poorly even if
// the total is unchanged.
double NashWelfare(const std::vector<double>& values);

}  // namespace cluster
}  // namespace proteus

#endif  // SRC_CLUSTER_FAIRNESS_H_
