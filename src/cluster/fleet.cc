#include "src/cluster/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <thread>
#include <utility>

#include "src/cluster/fairness.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"

namespace proteus {
namespace cluster {
namespace {

constexpr double kEps = 1e-9;

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

// Live per-tenant state for one Run(). The parallel demand section
// writes only the scratch fields of its own tenant.
struct TenantState {
  TenantSpec spec;
  int id = 0;
  Rng rng{0};
  double remaining = 0.0;  // Slot-hours of work left.
  bool admitted = false;
  bool retired = false;
  bool completed = false;
  bool cancelled = false;
  SimTime completion_time = 0.0;
  std::vector<AllocationId> slots;   // Running 1-instance spot allocations.
  std::vector<AllocationId> billed;  // Every allocation ever owned.
  std::unique_ptr<BidBrain> brain;
  std::unique_ptr<DemandReporter> reporter;
  // Accumulators.
  double allocated_hours = 0.0;
  double useful_hours = 0.0;
  double borrowed_hours = 0.0;
  double reported_rounds = 0.0;
  double true_rounds = 0.0;
  int preempted = 0;
  int evictions = 0;
  std::int64_t credits_final = 0;
  bool credits_captured = false;
  // Per-round scratch (owned by this tenant's parallel task).
  bool active_phase = true;
  int true_need = 0;
  int reported = 0;
  double useful_round = 0.0;                   // Productive slot-hours this round.
  AllocationId od_alloc = kInvalidAllocation;  // This round's top-up.

  int held() const { return static_cast<int>(slots.size()); }
};

// Productive window of one allocation within [t0, t1): starts after the
// prep delay, ends at eviction (when inside the round).
struct ProdWindow {
  SimTime from;
  SimTime to;
};

ProdWindow WindowOf(const Allocation& alloc, SimTime t0, SimTime t1, SimDuration prep) {
  ProdWindow w;
  w.from = std::max(t0, alloc.start + prep);
  SimTime end = t1;
  if (alloc.eviction_time.has_value()) {
    end = std::min(end, *alloc.eviction_time);
  }
  w.to = std::max(w.from, end);
  return w;
}

}  // namespace

const TenantResult* FleetResult::Find(const std::string& name) const {
  for (const TenantResult& t : tenants) {
    if (t.name == name) {
      return &t;
    }
  }
  return nullptr;
}

std::string FleetResult::ToCsv() const {
  std::string out;
  out += "round,time_h,capacity,tenant,name,strategy,reported,true_need,granted,"
         "borrowed,held_end,balance,useful_h\n";
  for (const TenantRound& row : tenant_rounds) {
    const RoundRecord& r = rounds[static_cast<std::size_t>(row.round)];
    const TenantResult& t = tenants[static_cast<std::size_t>(row.tenant)];
    AppendF(out, "%d,%.4f,%d,%d,%s,%s,%d,%d,%d,%d,%d,%lld,%.4f\n", row.round, r.time / kHour,
            r.capacity, row.tenant, t.name.c_str(), t.strategy.c_str(), row.reported,
            row.true_need, row.granted, row.borrowed, row.held_end,
            static_cast<long long>(row.balance), row.useful_hours);
  }
  out += "# tenant,name,strategy,admitted,completed,cancelled,deadline_met,completion_h,"
         "allocated_h,useful_h,borrowed_h,cost,preempted,evictions,credits\n";
  for (const TenantResult& t : tenants) {
    AppendF(out, "# %d,%s,%s,%d,%d,%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%d,%d,%lld\n", t.tenant,
            t.name.c_str(), t.strategy.c_str(), t.admitted ? 1 : 0, t.completed ? 1 : 0,
            t.cancelled ? 1 : 0, t.deadline_met ? 1 : 0,
            t.completed ? t.completion_time / kHour : -1.0, t.allocated_hours, t.useful_hours,
            t.borrowed_hours, t.cost, t.preempted_slots, t.evictions,
            static_cast<long long>(t.credits_final));
  }
  AppendF(out,
          "# fleet,allocator=%s,rounds=%zu,mean_util=%.4f,jain_long=%.4f,jain_short=%.4f,"
          "useful_h=%.4f,cost=%.4f,preempted=%d,evictions=%d\n",
          allocator.c_str(), rounds.size(), mean_utilization, jain_long_term, jain_short_term,
          total_useful_hours, total_cost, preempted_slots, evictions);
  return out;
}

std::uint64_t FleetResult::Digest() const {
  const std::string csv = ToCsv();
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const unsigned char c : csv) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

ClusterScheduler::ClusterScheduler(const InstanceTypeCatalog* catalog, const TraceStore* traces,
                                   const EvictionModel* estimator)
    : catalog_(catalog), traces_(traces), estimator_(estimator) {
  PROTEUS_CHECK(catalog_ != nullptr);
  PROTEUS_CHECK(traces_ != nullptr);
}

void ClusterScheduler::SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  metrics_ = metrics;
}

void ClusterScheduler::SetLedger(obs::EventLedger* ledger) { ledger_ = ledger; }

FleetResult ClusterScheduler::Run(const std::vector<TenantSpec>& specs, Allocator& allocator,
                                  const FleetConfig& config) {
  PROTEUS_CHECK_GT(config.round, 0.0);
  PROTEUS_CHECK_GE(config.rounds, 0);
  const double round_hours = config.round / kHour;
  const Money slot_bid =
      catalog_->Get(config.slot_market.instance_type).on_demand_price * config.bid_multiplier;

  SpotMarket market(*catalog_, *traces_);

  std::vector<TenantState> states(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    TenantState& ts = states[i];
    ts.spec = specs[i];
    ts.id = static_cast<int>(i);
    ts.rng = Rng(TenantStreamSeed(config.seed, ts.spec));
    ts.remaining = std::max(0.0, ts.spec.slot_hours);
  }

  std::size_t pool_size = config.threads == 0
                              ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                              : static_cast<std::size_t>(config.threads);
  ThreadPool pool(pool_size);

  FleetResult result;
  result.allocator = allocator.name();
  result.rounds.reserve(static_cast<std::size_t>(config.rounds));

  obs::Counter* rounds_counter = nullptr;
  obs::Counter* preempt_counter = nullptr;
  obs::Counter* evict_counter = nullptr;
  obs::Counter* od_counter = nullptr;
  if (metrics_ != nullptr) {
    rounds_counter = metrics_->GetCounter("cluster.rounds");
    preempt_counter = metrics_->GetCounter("cluster.preempted.slots");
    evict_counter = metrics_->GetCounter("cluster.evictions");
    od_counter = metrics_->GetCounter("cluster.on_demand.slots");
  }
  obs::EventId fleet_event = obs::kNoEvent;
  if (ledger_ != nullptr) {
    fleet_event = ledger_->Open("fleet", "cluster", config.start,
                                {{"allocator", allocator.name()},
                                 {"tenants", static_cast<std::int64_t>(specs.size())}});
  }

  auto capture_credits = [&](TenantState& ts) {
    if (!ts.credits_captured) {
      ts.credits_final = allocator.CreditBalance(ts.id);
      ts.credits_captured = true;
    }
  };

  for (int r = 0; r < config.rounds; ++r) {
    const SimTime t0 = config.start + r * config.round;
    const SimTime t1 = t0 + config.round;
    obs::EventId round_event = obs::kNoEvent;
    if (ledger_ != nullptr) {
      round_event = ledger_->Open("round", "cluster", t0,
                                  {{"round", static_cast<std::int64_t>(r)}});
    }

    // 1. Retire finished/cancelled tenants; their slots return to the pool.
    for (TenantState& ts : states) {
      if (!ts.admitted || ts.retired) {
        continue;
      }
      const bool cancel_due =
          ts.spec.cancel_at.has_value() && *ts.spec.cancel_at <= t0 + kEps && !ts.completed;
      if (!ts.completed && !cancel_due) {
        continue;
      }
      ts.cancelled = cancel_due;
      capture_credits(ts);
      for (const AllocationId id : ts.slots) {
        market.Terminate(id, t0);
      }
      ts.slots.clear();
      allocator.OnTenantRetired(ts.id);
      ts.retired = true;
      if (ledger_ != nullptr) {
        ledger_->Record("tenant.retire", "cluster", t0,
                        {{"tenant", ts.spec.name},
                         {"reason", std::string(ts.completed ? "completed" : "cancelled")}});
      }
    }

    // 2. Admissions at the round boundary.
    for (TenantState& ts : states) {
      if (ts.admitted || ts.spec.arrival > t0 + kEps) {
        continue;
      }
      if (ts.spec.cancel_at.has_value() && *ts.spec.cancel_at <= ts.spec.arrival + kEps) {
        ts.cancelled = true;  // Cancelled before it ever started.
        continue;
      }
      ts.admitted = true;
      if (ts.spec.strategy == DemandStrategy::kBidBrain) {
        PROTEUS_CHECK(estimator_ != nullptr)
            << "kBidBrain tenant " << ts.spec.name << " needs an eviction estimator";
        BidBrainConfig bc;
        bc.allocation_quantum = std::max(1, ts.spec.max_slots / 4);
        bc.max_spot_instances = ts.spec.max_slots;
        ts.brain = std::make_unique<BidBrain>(catalog_, traces_, estimator_, bc);
      }
      ts.reporter = MakeDemandReporter(ts.spec, ts.brain.get(), config.slot_market, slot_bid);
      allocator.OnTenantAdmitted(ts.id);
      if (ts.remaining <= kEps) {
        ts.completed = true;  // Zero-work job: done on arrival.
        ts.completion_time = t0;
      }
      if (ledger_ != nullptr) {
        ledger_->Record("tenant.admit", "cluster", t0, {{"tenant", ts.spec.name}});
      }
    }

    // 3. This round's shared capacity.
    const int capacity =
        config.capacity.empty() ? config.fixed_capacity : config.capacity.SlotsAt(t0);
    market.SetCapacity(config.slot_market, capacity);

    std::vector<TenantState*> active;
    for (TenantState& ts : states) {
      if (ts.admitted && !ts.retired) {
        active.push_back(&ts);
      }
    }

    RoundRecord rec;
    rec.round = r;
    rec.time = t0;
    rec.capacity = capacity;
    rec.active_tenants = static_cast<int>(active.size());

    // 4. Demand reports — the only parallel section. Each task touches
    // one tenant's state (its own rng stream and scratch fields), so the
    // outcome is independent of scheduling and thread count.
    pool.ParallelFor(active.size(), [&](std::size_t i) {
      TenantState& ts = *active[i];
      ts.active_phase =
          ts.spec.active_fraction >= 1.0 ? true : ts.rng.Bernoulli(ts.spec.active_fraction);
      ts.true_need =
          TrueNeedSlots(ts.spec, ts.remaining, config.round, config.phi, ts.active_phase);
      TenantProgress progress;
      progress.now = t0;
      progress.round = config.round;
      progress.held_slots = ts.held();
      progress.true_need = ts.true_need;
      progress.max_slots = ts.spec.max_slots;
      progress.remaining_slot_hours = ts.remaining;
      progress.deadline = ts.spec.deadline;
      ts.reported = std::max(0, ts.reporter->Report(progress, ts.rng));
      ts.od_alloc = kInvalidAllocation;
    });

    std::vector<SlotDemand> demands;
    demands.reserve(active.size());
    for (const TenantState* ts : active) {
      demands.push_back({ts->id, ts->reported});
    }

    // 5. Arbitration.
    std::vector<SlotGrant> grants = allocator.Allocate(r, capacity, demands);
    PROTEUS_CHECK_EQ(grants.size(), demands.size());
    rec.conservation_ok = allocator.ConservationHolds();
    PROTEUS_CHECK(rec.conservation_ok) << "credit conservation violated at round " << r;
    rec.escrow = allocator.Escrow();
    rec.balances = allocator.SumBalances();

    // 6. Reconcile market holdings: every shrink before any grow, so the
    // finite market is never transiently overdrawn.
    for (std::size_t i = 0; i < active.size(); ++i) {
      TenantState& ts = *active[i];
      const int target = grants[i].slots;
      const int held_before = ts.held();
      if (held_before <= target) {
        continue;
      }
      // Slots the tenant still wanted but lost are preemptions (provider
      // reclaim: Revoke, eviction billing); the rest it gave up
      // voluntarily (Terminate). Newest slots are released first.
      const int to_release = held_before - target;
      const int preempted = std::max(0, std::min(held_before, ts.true_need) - target);
      const int voluntary = to_release - preempted;
      for (int k = 0; k < to_release; ++k) {
        const AllocationId id = ts.slots.back();
        ts.slots.pop_back();
        if (k < voluntary) {
          market.Terminate(id, t0);
        } else {
          market.Revoke(id, t0);
        }
      }
      if (preempted > 0) {
        ts.preempted += preempted;
        rec.preempted_slots += preempted;
        if (ledger_ != nullptr) {
          ledger_->Record("tenant.preempt", "cluster", t0,
                          {{"tenant", ts.spec.name},
                           {"slots", static_cast<std::int64_t>(preempted)}});
        }
      }
    }
    for (std::size_t i = 0; i < active.size(); ++i) {
      TenantState& ts = *active[i];
      const int target = grants[i].slots;
      // One instance per allocation keeps shrink/eviction granularity at
      // a single slot.
      while (ts.held() < target) {
        const std::optional<AllocationId> id =
            market.RequestSpot(config.slot_market, 1, slot_bid, t0);
        if (!id.has_value()) {
          break;  // Spot price above the fleet bid this round.
        }
        ts.slots.push_back(*id);
        ts.billed.push_back(*id);
      }
    }

    // 7. Deadline-driven on-demand top-up (outside the shared pool).
    for (TenantState& ts : states) {
      if (!ts.admitted || ts.retired || ts.completed || ts.remaining <= kEps) {
        continue;
      }
      if (ts.spec.deadline == kNoDeadline || ts.spec.deadline <= t0) {
        continue;
      }
      const double hours_left = (ts.spec.deadline - t0) / kHour;
      const double per_slot = std::max(config.phi, 1e-9) * hours_left;
      const int needed = static_cast<int>(std::ceil(ts.remaining / per_slot - kEps));
      const int od = std::clamp(needed - ts.held(), 0, ts.spec.max_slots - ts.held());
      if (od <= 0) {
        continue;
      }
      ts.od_alloc = market.RequestOnDemand(config.slot_market, od, t0);
      ts.billed.push_back(ts.od_alloc);
      rec.on_demand += od;
      if (od_counter != nullptr) {
        od_counter->Add(static_cast<std::uint64_t>(od));
      }
    }

    // 8. Work accrual: integrate productive slots piecewise over the
    // round (prep delay, evictions, cancellation, completion).
    for (std::size_t i = 0; i < active.size(); ++i) {
      TenantState& ts = *active[i];
      ts.reported_rounds += ts.reported;
      ts.true_rounds += ts.true_need;
      ts.borrowed_hours += grants[i].borrowed * round_hours;

      std::vector<ProdWindow> windows;
      for (const AllocationId id : ts.slots) {
        windows.push_back(WindowOf(market.Get(id), t0, t1, config.prep_delay));
      }
      if (ts.od_alloc != kInvalidAllocation) {
        const Allocation& od = market.Get(ts.od_alloc);
        for (int k = 0; k < od.count; ++k) {
          windows.push_back(WindowOf(od, t0, t1, config.prep_delay));
        }
      }
      // Work stops at cancellation even though retirement happens at the
      // next boundary.
      const SimTime work_stop = ts.spec.cancel_at.has_value() ? *ts.spec.cancel_at : t1;
      // The slots a tenant can actually apply this round: its true need
      // when in an active phase, nothing when idle (idle slots keep
      // state warm; they do not produce).
      const int prod_cap = ts.active_phase ? ts.true_need : 0;

      std::vector<SimTime> cuts = {t0, t1};
      for (const ProdWindow& w : windows) {
        if (w.from > t0 && w.from < t1) cuts.push_back(w.from);
        if (w.to > t0 && w.to < t1) cuts.push_back(w.to);
      }
      if (work_stop > t0 && work_stop < t1) cuts.push_back(work_stop);
      std::sort(cuts.begin(), cuts.end());
      cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

      double useful_this_round = 0.0;
      for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
        const SimTime s = cuts[c];
        const SimTime e = cuts[c + 1];
        if (ts.completed || ts.remaining <= kEps || s >= work_stop) {
          break;
        }
        int online = 0;
        for (const ProdWindow& w : windows) {
          if (w.from <= s + kEps && w.to >= e - kEps) {
            ++online;
          }
        }
        const int productive = std::min(online, prod_cap);
        if (productive <= 0) {
          continue;
        }
        const double seg_hours = (e - s) / kHour;
        const double produced = productive * config.phi * seg_hours;
        if (produced >= ts.remaining - kEps) {
          const double finish_hours = ts.remaining / (productive * config.phi);
          useful_this_round += productive * finish_hours;
          ts.completion_time = s + finish_hours * kHour;
          ts.remaining = 0.0;
          ts.completed = true;
        } else {
          useful_this_round += productive * seg_hours;
          ts.remaining -= produced;
        }
      }
      ts.useful_round = useful_this_round;
      ts.useful_hours += useful_this_round;
      rec.useful_hours += useful_this_round;

      // Billing-hours held this round (prep time included: it is paid).
      for (const AllocationId id : ts.slots) {
        const Allocation& a = market.Get(id);
        SimTime end = t1;
        if (a.eviction_time.has_value()) {
          end = std::min(end, *a.eviction_time);
        }
        ts.allocated_hours += std::max(0.0, end - std::max(t0, a.start)) / kHour * a.count;
      }
      if (ts.od_alloc != kInvalidAllocation) {
        const Allocation& od = market.Get(ts.od_alloc);
        ts.allocated_hours += (t1 - t0) / kHour * od.count;
      }
    }

    // 9. Apply mid-round price evictions and release the round's
    // on-demand top-ups.
    for (TenantState* tsp : active) {
      TenantState& ts = *tsp;
      std::vector<AllocationId> still_running;
      for (const AllocationId id : ts.slots) {
        const Allocation& a = market.Get(id);
        if (a.eviction_time.has_value() && *a.eviction_time <= t1) {
          market.MarkEvicted(id);
          ++ts.evictions;
          ++rec.evictions;
          if (ledger_ != nullptr) {
            ledger_->Record("tenant.evict", "cluster", *a.eviction_time,
                            {{"tenant", ts.spec.name}});
          }
        } else {
          still_running.push_back(id);
        }
      }
      ts.slots = std::move(still_running);
      if (ts.od_alloc != kInvalidAllocation) {
        market.Terminate(ts.od_alloc, t1);
        ts.od_alloc = kInvalidAllocation;
      }
    }

    // 10. Round accounting.
    std::vector<double> granted_values;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const TenantState& ts = *active[i];
      rec.reported += ts.reported;
      rec.truthful += ts.true_need;
      rec.granted += grants[i].slots;
      rec.borrowed += grants[i].borrowed;
      granted_values.push_back(static_cast<double>(grants[i].slots));

      TenantRound row;
      row.round = r;
      row.tenant = ts.id;
      row.reported = ts.reported;
      row.true_need = ts.true_need;
      row.granted = grants[i].slots;
      row.borrowed = grants[i].borrowed;
      row.held_end = ts.held();
      row.balance = allocator.CreditBalance(ts.id);
      row.useful_hours = ts.useful_round;
      result.tenant_rounds.push_back(row);
    }
    PROTEUS_CHECK_LE(rec.granted, rec.capacity);
    rec.utilization =
        capacity > 0 ? rec.useful_hours / (capacity * round_hours) : 0.0;
    rec.jain_granted = JainIndex(granted_values);
    result.rounds.push_back(rec);

    if (rounds_counter != nullptr) {
      rounds_counter->Increment();
    }
    if (preempt_counter != nullptr && rec.preempted_slots > 0) {
      preempt_counter->Add(static_cast<std::uint64_t>(rec.preempted_slots));
    }
    if (evict_counter != nullptr && rec.evictions > 0) {
      evict_counter->Add(static_cast<std::uint64_t>(rec.evictions));
    }
    if (tracer_ != nullptr) {
      tracer_->SpanAt(t0, config.round, "round", "cluster",
                      {{"round", static_cast<std::int64_t>(r)},
                       {"capacity", static_cast<std::int64_t>(capacity)},
                       {"granted", static_cast<std::int64_t>(rec.granted)},
                       {"borrowed", static_cast<std::int64_t>(rec.borrowed)}});
      tracer_->CounterAt(t0, "cluster.utilization", "cluster", rec.utilization);
      tracer_->CounterAt(t0, "cluster.escrow", "cluster", static_cast<double>(rec.escrow));
    }
    if (ledger_ != nullptr) {
      ledger_->Close(round_event, config.round,
                     {{"granted", static_cast<std::int64_t>(rec.granted)},
                      {"utilization", rec.utilization}});
    }
  }

  // Horizon: retire everyone still active and settle bills.
  const SimTime horizon = config.start + config.rounds * config.round;
  for (TenantState& ts : states) {
    if (ts.admitted && !ts.retired) {
      capture_credits(ts);
      for (const AllocationId id : ts.slots) {
        market.Terminate(id, horizon);
      }
      ts.slots.clear();
      allocator.OnTenantRetired(ts.id);
      ts.retired = true;
    }
  }

  result.tenants.reserve(states.size());
  std::vector<double> long_term;
  for (TenantState& ts : states) {
    TenantResult tr;
    tr.name = ts.spec.name;
    tr.strategy = DemandStrategyName(ts.spec.strategy);
    tr.tenant = ts.id;
    tr.admitted = ts.admitted;
    tr.completed = ts.completed;
    tr.cancelled = ts.cancelled;
    tr.completion_time = ts.completion_time;
    tr.deadline_met = ts.completed && ts.completion_time <= ts.spec.deadline + kEps;
    tr.allocated_hours = ts.allocated_hours;
    tr.useful_hours = ts.useful_hours;
    tr.borrowed_hours = ts.borrowed_hours;
    tr.reported_slot_rounds = ts.reported_rounds;
    tr.true_slot_rounds = ts.true_rounds;
    tr.preempted_slots = ts.preempted;
    tr.evictions = ts.evictions;
    tr.credits_final = ts.credits_final;
    for (const AllocationId id : ts.billed) {
      tr.cost += market.Bill(id, horizon + kHour).charged;
    }
    result.total_cost += tr.cost;
    result.total_useful_hours += tr.useful_hours;
    result.preempted_slots += tr.preempted_slots;
    result.evictions += tr.evictions;
    if (ts.admitted) {
      long_term.push_back(tr.allocated_hours);
    }
    result.tenants.push_back(std::move(tr));
  }

  double util_sum = 0.0;
  double jain_sum = 0.0;
  int jain_rounds = 0;
  for (const RoundRecord& rec : result.rounds) {
    util_sum += rec.utilization;
    if (rec.active_tenants > 0) {
      jain_sum += rec.jain_granted;
      ++jain_rounds;
    }
  }
  result.mean_utilization =
      result.rounds.empty() ? 0.0 : util_sum / static_cast<double>(result.rounds.size());
  result.jain_short_term = jain_rounds > 0 ? jain_sum / jain_rounds : 1.0;
  result.jain_long_term = JainIndex(long_term);

  if (metrics_ != nullptr) {
    metrics_->GetGauge("cluster.utilization.mean")->Set(result.mean_utilization);
    metrics_->GetGauge("cluster.fairness.jain_long")->Set(result.jain_long_term);
    metrics_->GetGauge("cluster.fairness.jain_short")->Set(result.jain_short_term);
    metrics_->GetGauge("cluster.cost.dollars")->Set(result.total_cost);
    for (const TenantResult& t : result.tenants) {
      const obs::Labels labels = {{"tenant", t.name}};
      metrics_->GetGauge("cluster.tenant.allocated_hours", labels)->Set(t.allocated_hours);
      metrics_->GetGauge("cluster.tenant.useful_hours", labels)->Set(t.useful_hours);
      metrics_->GetGauge("cluster.tenant.credits", labels)
          ->Set(static_cast<double>(t.credits_final));
      metrics_->GetGauge("cluster.tenant.cost.dollars", labels)->Set(t.cost);
    }
  }
  if (ledger_ != nullptr) {
    ledger_->Close(fleet_event, horizon - config.start,
                   {{"mean_util", result.mean_utilization},
                    {"jain_long", result.jain_long_term},
                    {"cost", result.total_cost}});
  }
  return result;
}

}  // namespace cluster
}  // namespace proteus
