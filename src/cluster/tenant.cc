#include "src/cluster/tenant.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace proteus {
namespace cluster {

namespace {
std::uint64_t Fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t SplitMix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

const char* DemandStrategyName(DemandStrategy strategy) {
  switch (strategy) {
    case DemandStrategy::kTruthful:
      return "truthful";
    case DemandStrategy::kInflate:
      return "inflate";
    case DemandStrategy::kAlwaysMax:
      return "always_max";
    case DemandStrategy::kBidBrain:
      return "bidbrain";
  }
  return "?";
}

std::unique_ptr<DemandReporter> MakeDemandReporter(const TenantSpec& spec,
                                                   const AcquisitionPolicy* policy,
                                                   const MarketKey& slot_market, Money slot_bid) {
  switch (spec.strategy) {
    case DemandStrategy::kTruthful:
      return std::make_unique<TruthfulDemandReporter>();
    case DemandStrategy::kInflate:
      return std::make_unique<InflateDemandReporter>(spec.inflate_factor);
    case DemandStrategy::kAlwaysMax:
      return std::make_unique<MaxDemandReporter>(spec.inflate_factor);
    case DemandStrategy::kBidBrain:
      PROTEUS_CHECK(policy != nullptr) << "kBidBrain tenant " << spec.name << " needs a policy";
      return std::make_unique<PolicyDemandReporter>(policy, slot_market, slot_bid);
  }
  PROTEUS_CHECK(false) << "unreachable";
  return nullptr;
}

int TrueNeedSlots(const TenantSpec& spec, double remaining_slot_hours, SimDuration round,
                  double phi, bool active) {
  if (remaining_slot_hours <= 0.0) {
    return 0;
  }
  if (!active) {
    return std::min(spec.idle_slots, spec.max_slots);
  }
  const double round_hours = round / kHour;
  const double per_slot = round_hours * std::max(phi, 1e-9);
  const int need = static_cast<int>(std::ceil(remaining_slot_hours / per_slot - 1e-9));
  return std::clamp(need, 0, spec.max_slots);
}

std::uint64_t TenantStreamSeed(std::uint64_t fleet_seed, const TenantSpec& spec) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = Fnv1a(h, &fleet_seed, sizeof(fleet_seed));
  if (spec.demand_seed != 0) {
    h = Fnv1a(h, &spec.demand_seed, sizeof(spec.demand_seed));
  } else {
    h = Fnv1a(h, spec.name.data(), spec.name.size());
  }
  return SplitMix(h);
}

}  // namespace cluster
}  // namespace proteus
