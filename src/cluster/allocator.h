// Allocator: the per-round arbitration seam of the multi-tenant cluster
// (DESIGN.md §14).
//
// Each round the ClusterScheduler samples the shared capacity, collects
// one reported slot demand per active tenant (the bidbrain demand seam),
// and asks an Allocator to divide the capacity. Allocators see only
// *reported* demands — never a tenant's true need — which is exactly
// what makes the mechanism-design question real: a greedy tenant may
// misreport, and the allocator's structure determines whether that pays.
//
// Three mechanisms ship behind the interface:
//  - StaticFairShareAllocator: everyone gets at most an equal share;
//    unused share is wasted (the classic low-utilization baseline).
//  - GreedyMaxBidAllocator: biggest reported demand wins (rewards
//    inflation; the strawman a fleet of self-interested BidBrains is).
//  - KarmaAllocator (karma.h): credit-based donor/borrower trading,
//    strategy-proof under demand inflation.
//
// Determinism contract: Allocate() must be a pure function of
// (round, capacity, demands) and the allocator's own state; ties are
// broken by tenant id. The fleet driver relies on this for
// byte-identical CSV output at any thread count.
#ifndef SRC_CLUSTER_ALLOCATOR_H_
#define SRC_CLUSTER_ALLOCATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace proteus {
namespace cluster {

// One tenant's reported demand for the coming round.
struct SlotDemand {
  int tenant = 0;  // Stable fleet-wide id (spec order). Strictly increasing.
  int slots = 0;   // Reported demand; >= 0.
};

// One tenant's grant for the round, index-aligned with the demands.
struct SlotGrant {
  int slots = 0;     // Total slots granted (guaranteed + borrowed).
  int borrowed = 0;  // Slots beyond the tenant's fair share (0 for
                     // mechanisms without borrowing).
};

class Allocator {
 public:
  virtual ~Allocator() = default;

  // Stable identifier used in reports and CSV output (no commas).
  virtual std::string name() const = 0;

  // Divides `capacity` slots among the demands. Returns grants aligned
  // with `demands`; the sum of granted slots never exceeds capacity.
  // `round` indexes the arbitration epoch (used for rotating-remainder
  // fair shares and delayed credit payouts).
  virtual std::vector<SlotGrant> Allocate(int round, int capacity,
                                          const std::vector<SlotDemand>& demands) = 0;

  // Lifecycle notifications so stateful mechanisms can mint/retire
  // per-tenant state (Karma credits). Defaults are no-ops.
  virtual void OnTenantAdmitted(int tenant) { (void)tenant; }
  virtual void OnTenantRetired(int tenant) { (void)tenant; }

  // Credit-flow introspection; mechanisms without credits report zeros
  // and a vacuously-true conservation invariant.
  virtual std::int64_t CreditBalance(int tenant) const {
    (void)tenant;
    return 0;
  }
  virtual std::int64_t SumBalances() const { return 0; }
  virtual std::int64_t Escrow() const { return 0; }
  virtual bool ConservationHolds() const { return true; }
};

// Equal shares with a rotating remainder; grant = min(demand, share).
// Unused share is wasted (no trading) — the "static" baseline whose
// poor utilization under dynamic demands motivates credit mechanisms.
class StaticFairShareAllocator : public Allocator {
 public:
  std::string name() const override { return "fair_share"; }
  std::vector<SlotGrant> Allocate(int round, int capacity,
                                  const std::vector<SlotDemand>& demands) override;
};

// Grants the largest reported demand first (ties: lower tenant id).
// Maximally exploitable: inflating your report strictly increases your
// allocation whenever the cluster is contended.
class GreedyMaxBidAllocator : public Allocator {
 public:
  std::string name() const override { return "greedy"; }
  std::vector<SlotGrant> Allocate(int round, int capacity,
                                  const std::vector<SlotDemand>& demands) override;
};

// Fair shares for `n` claimants over `capacity` slots at epoch `round`:
// base = capacity/n each, with the remainder rotated across claimant
// indices by round so no index is systematically favored. Returns the
// per-index share, aligned with [0, n).
std::vector<int> RotatingFairShares(int round, int capacity, int n);

// Builds an allocator from a textual spec:
//   "fair"                       StaticFairShareAllocator
//   "greedy"                     GreedyMaxBidAllocator
//   "karma"                      KarmaAllocator with default config
//   "karma:init=<credits>"       KarmaAllocator with initial balance
// Returns nullptr and sets *error (when non-null) on a bad spec.
std::unique_ptr<Allocator> MakeAllocator(const std::string& spec, std::string* error = nullptr);

}  // namespace cluster
}  // namespace proteus

#endif  // SRC_CLUSTER_ALLOCATOR_H_
