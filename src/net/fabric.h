// In-process network substrate with per-node bandwidth accounting.
//
// Substitution note (DESIGN.md §2): instead of 64 physical machines with
// 1 Gbps NICs, nodes are in-process entities and the fabric charges every
// logical transfer to per-node ingress/egress byte counters. At the end of
// each training iteration (a "round") the runtime converts byte counts to
// a communication time per node:
//
//   comm_time(node) = (foreground_bytes + background_bytes) / nic_bandwidth
//   where the byte figure is max(ingress, egress) for full-duplex NICs.
//
// Foreground traffic (parameter reads/updates, ActivePS serving) gates the
// iteration. Background traffic (ActivePS -> BackupPS streaming, §3.2) is
// "streamed ... at a rate that the network bandwidth accommodates": it
// never gates a node that has no foreground role (a dedicated BackupPS
// machine), but it does contend with, and therefore slow, foreground
// traffic on nodes that have both — this is exactly the stage-2 straggler
// effect the paper observes on reliable machines hosting workers.
#ifndef SRC_NET_FABRIC_H_
#define SRC_NET_FABRIC_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/types.h"

namespace proteus {

enum class TrafficClass {
  kForeground,  // Worker reads/updates, PS serving, state migration on the critical path.
  kBackground,  // Active->Backup streaming, prefetching, data preloading.
};

struct NodeTraffic {
  std::uint64_t fg_ingress = 0;
  std::uint64_t fg_egress = 0;
  std::uint64_t bg_ingress = 0;
  std::uint64_t bg_egress = 0;

  std::uint64_t TotalIngress() const { return fg_ingress + bg_ingress; }
  std::uint64_t TotalEgress() const { return fg_egress + bg_egress; }
  bool HasForeground() const { return fg_ingress > 0 || fg_egress > 0; }
};

class Fabric {
 public:
  // nic_bandwidth in bytes/second (1 Gbps ~ 1.25e8).
  explicit Fabric(double nic_bandwidth_bps = 1.25e8);

  void AddNode(NodeId node);
  // Removing an unknown node is a DCHECK'd no-op: with detector-driven
  // removal a node can be confirmed dead (and removed) concurrently
  // with an announced eviction for the same allocation, so removal must
  // be idempotent mid-round.
  void RemoveNode(NodeId node);
  bool HasNode(NodeId node) const;

  // Clears the per-round counters.
  void BeginRound();

  // Charges `bytes` from src to dst in the given class. Self-transfers
  // (src == dst) are free: colocated components share memory.
  void RecordTransfer(NodeId src, NodeId dst, std::uint64_t bytes,
                      TrafficClass cls = TrafficClass::kForeground);

  // Charges ingress-only traffic from outside the cluster (e.g. input
  // data loads from S3-like storage).
  void RecordExternalIngress(NodeId dst, std::uint64_t bytes,
                             TrafficClass cls = TrafficClass::kForeground);
  // Charges egress-only traffic to outside the cluster (e.g. checkpoint
  // writes to durable storage).
  void RecordExternalEgress(NodeId src, std::uint64_t bytes,
                            TrafficClass cls = TrafficClass::kBackground);

  // Communication time this round for one node. Background-only nodes
  // report zero (their streams ride spare bandwidth outside the barrier).
  SimDuration RoundCommTime(NodeId node) const;

  // Max over all nodes: the round's network makespan contribution.
  SimDuration RoundCommTimeMax() const;
  // Node attaining the max (kInvalidNode when no traffic).
  NodeId RoundBottleneckNode() const;

  // Unknown lookups return a static empty NodeTraffic under
  // PROTEUS_DCHECK rather than crashing (or worse, inserting): chaos
  // paths can legitimately ask about a node that was just confirmed
  // dead and removed mid-round.
  const NodeTraffic& Traffic(NodeId node) const;
  std::uint64_t RoundTotalBytes() const;

  double nic_bandwidth() const { return nic_bandwidth_; }

 private:
  double nic_bandwidth_;
  std::map<NodeId, NodeTraffic> traffic_;
};

}  // namespace proteus

#endif  // SRC_NET_FABRIC_H_
