#include "src/net/fabric.h"

#include <algorithm>

#include "src/common/logging.h"

namespace proteus {

Fabric::Fabric(double nic_bandwidth_bps) : nic_bandwidth_(nic_bandwidth_bps) {
  PROTEUS_CHECK_GT(nic_bandwidth_bps, 0.0);
}

void Fabric::AddNode(NodeId node) {
  PROTEUS_CHECK(traffic_.find(node) == traffic_.end()) << "node " << node << " already present";
  traffic_[node] = NodeTraffic{};
}

void Fabric::RemoveNode(NodeId node) {
  auto it = traffic_.find(node);
  PROTEUS_DCHECK(it != traffic_.end()) << "node " << node << " not present";
  if (it != traffic_.end()) {
    traffic_.erase(it);
  }
}

bool Fabric::HasNode(NodeId node) const { return traffic_.find(node) != traffic_.end(); }

void Fabric::BeginRound() {
  for (auto& [unused, t] : traffic_) {
    t = NodeTraffic{};
  }
}

void Fabric::RecordTransfer(NodeId src, NodeId dst, std::uint64_t bytes, TrafficClass cls) {
  if (src == dst || bytes == 0) {
    return;
  }
  auto src_it = traffic_.find(src);
  auto dst_it = traffic_.find(dst);
  PROTEUS_CHECK(src_it != traffic_.end()) << "unknown src node " << src;
  PROTEUS_CHECK(dst_it != traffic_.end()) << "unknown dst node " << dst;
  if (cls == TrafficClass::kForeground) {
    src_it->second.fg_egress += bytes;
    dst_it->second.fg_ingress += bytes;
  } else {
    src_it->second.bg_egress += bytes;
    dst_it->second.bg_ingress += bytes;
  }
}

void Fabric::RecordExternalIngress(NodeId dst, std::uint64_t bytes, TrafficClass cls) {
  if (bytes == 0) {
    return;
  }
  auto it = traffic_.find(dst);
  PROTEUS_CHECK(it != traffic_.end()) << "unknown dst node " << dst;
  if (cls == TrafficClass::kForeground) {
    it->second.fg_ingress += bytes;
  } else {
    it->second.bg_ingress += bytes;
  }
}

void Fabric::RecordExternalEgress(NodeId src, std::uint64_t bytes, TrafficClass cls) {
  if (bytes == 0) {
    return;
  }
  auto it = traffic_.find(src);
  PROTEUS_CHECK(it != traffic_.end()) << "unknown src node " << src;
  if (cls == TrafficClass::kForeground) {
    it->second.fg_egress += bytes;
  } else {
    it->second.bg_egress += bytes;
  }
}

SimDuration Fabric::RoundCommTime(NodeId node) const {
  const NodeTraffic& t = Traffic(node);
  if (!t.HasForeground()) {
    return 0.0;
  }
  const std::uint64_t wire_bytes = std::max(t.TotalIngress(), t.TotalEgress());
  return static_cast<SimDuration>(wire_bytes) / nic_bandwidth_;
}

SimDuration Fabric::RoundCommTimeMax() const {
  SimDuration best = 0.0;
  for (const auto& [node, unused] : traffic_) {
    best = std::max(best, RoundCommTime(node));
  }
  return best;
}

NodeId Fabric::RoundBottleneckNode() const {
  NodeId best_node = kInvalidNode;
  SimDuration best = -1.0;
  for (const auto& [node, unused] : traffic_) {
    const SimDuration t = RoundCommTime(node);
    if (t > best) {
      best = t;
      best_node = node;
    }
  }
  return best_node;
}

const NodeTraffic& Fabric::Traffic(NodeId node) const {
  static const NodeTraffic kEmpty;
  auto it = traffic_.find(node);
  PROTEUS_DCHECK(it != traffic_.end()) << "unknown node " << node;
  return it != traffic_.end() ? it->second : kEmpty;
}

std::uint64_t Fabric::RoundTotalBytes() const {
  std::uint64_t total = 0;
  for (const auto& [unused, t] : traffic_) {
    total += t.TotalEgress();
  }
  return total;
}

}  // namespace proteus
