#include "src/bidbrain/eviction_estimator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/common/stats.h"

namespace proteus {

namespace {

// Fallback when a market has no usable history: assume worst-case
// volatility at tiny deltas, tapering with the delta (pessimistic
// prior). Silently returning beta = 0 here would make an unmeasured
// market look perfectly reliable and pull every bid toward it.
EvictionStats PessimisticPrior(Money bid_delta) {
  EvictionStats prior;
  prior.beta = std::clamp(0.05 / std::max(bid_delta, 0.001), 0.0, 0.9);
  prior.median_time_to_eviction = kHour / 2;
  return prior;
}

}  // namespace

std::vector<Money> EvictionEstimator::DefaultDeltaGrid() {
  return {0.0001, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4};
}

void EvictionEstimator::Train(const TraceStore& history, SimTime train_begin, SimTime train_end,
                              SimDuration sample_step, std::vector<Money> delta_grid) {
  PROTEUS_CHECK_GT(train_end, train_begin);
  PROTEUS_CHECK_GT(sample_step, 0.0);
  PROTEUS_CHECK(!delta_grid.empty());
  delta_grid_ = std::move(delta_grid);
  std::sort(delta_grid_.begin(), delta_grid_.end());
  stats_.clear();

  for (const MarketKey& key : history.Keys()) {
    const PriceSeries& series = history.Get(key);
    if (series.empty()) {
      // No price points at all: leave the market out of stats_ so
      // Estimate serves the pessimistic prior instead of replaying an
      // empty history (PriceAt on an empty series is a CHECK failure).
      continue;
    }
    std::vector<EvictionStats> per_delta;
    per_delta.reserve(delta_grid_.size());
    for (const Money delta : delta_grid_) {
      int evicted = 0;
      int samples = 0;
      SampleStats times;
      for (SimTime t = train_begin; t + kHour <= train_end; t += sample_step) {
        const Money bid = series.PriceAt(t) + delta;
        // A crossing at exactly t would mean the bid was never granted;
        // we bid above the current price so the first crossing is later.
        const std::optional<SimTime> crossing = series.FirstTimeAbove(bid, t, t + kHour);
        ++samples;
        if (crossing.has_value()) {
          ++evicted;
          times.Add(*crossing - t);
        }
      }
      EvictionStats stats;
      stats.samples = samples;
      stats.beta = samples > 0 ? static_cast<double>(evicted) / samples : 0.0;
      stats.median_time_to_eviction = times.empty() ? kHour : times.Median();
      per_delta.push_back(stats);
    }
    stats_[key] = std::move(per_delta);
  }
}

EvictionStats EvictionEstimator::Estimate(const MarketKey& market, Money bid_delta) const {
  auto it = stats_.find(market);
  if (it == stats_.end()) {
    return PessimisticPrior(bid_delta);
  }
  // Closest grid point by |delta| distance in log space (grid is
  // geometric-ish).
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < delta_grid_.size(); ++i) {
    const double dist = std::fabs(std::log(std::max(bid_delta, 1e-6)) -
                                  std::log(std::max(delta_grid_[i], 1e-6)));
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  const EvictionStats& stats = it->second[best];
  if (stats.samples == 0) {
    // The training window was too short to complete a single billing
    // hour, so beta was never measured. The stored 0.0 would read as
    // "never evicted" — the most optimistic possible claim from the
    // least possible evidence — so serve the prior instead.
    return PessimisticPrior(bid_delta);
  }
  return stats;
}

}  // namespace proteus
