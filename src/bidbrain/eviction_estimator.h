// Empirical eviction-probability estimation from historical spot prices
// (§4.1 "Estimating Evictions").
//
// For every (zone, instance type) market and a grid of bid deltas, the
// estimator replays the training window of the trace: at regular sample
// instants it pretends to bid (current price + delta) and records whether
// the price exceeded the bid within the billing hour and, if so, when.
// This yields beta (probability of eviction within the hour) and the
// median time-to-eviction per (market, delta) — the paper trains on
// March-June 2016 and evaluates on a disjoint later window.
#ifndef SRC_BIDBRAIN_EVICTION_ESTIMATOR_H_
#define SRC_BIDBRAIN_EVICTION_ESTIMATOR_H_

#include <map>
#include <vector>

#include "src/common/types.h"
#include "src/market/trace_store.h"

namespace proteus {

struct EvictionStats {
  double beta = 0.0;                           // P(evicted within the hour).
  SimDuration median_time_to_eviction = kHour; // Among evicted samples.
  int samples = 0;
};

// Interface through which BidBrain queries resource-reliability
// estimates. The AWS-trained EvictionEstimator is the paper's main
// instance; §7 notes the policies "could be retargeted ... beyond the
// AWS spot market" by swapping this estimate — see
// CapacityEvictionModel (src/market/capacity_trace.h) for the private
// best-effort-cluster instance.
class EvictionModel {
 public:
  virtual ~EvictionModel() = default;
  virtual EvictionStats Estimate(const MarketKey& market, Money bid_delta) const = 0;
};

class EvictionEstimator : public EvictionModel {
 public:
  // Default delta grid spans the paper's considered range
  // [$0.0001, $0.4] over the market price.
  static std::vector<Money> DefaultDeltaGrid();

  EvictionEstimator() = default;

  // Replays [train_begin, train_end) of every market in the store at
  // `sample_step` granularity.
  void Train(const TraceStore& history, SimTime train_begin, SimTime train_end,
             SimDuration sample_step = 10 * kMinute,
             std::vector<Money> delta_grid = DefaultDeltaGrid());

  bool trained() const { return !stats_.empty(); }

  // Stats for an arbitrary delta: returns the trained grid point with the
  // closest delta (conservative step-wise lookup). Markets with no usable
  // history — never trained, an empty price series, or a training window
  // too short to complete one billing hour — get a pessimistic prior
  // rather than a silently optimistic beta of zero.
  EvictionStats Estimate(const MarketKey& market, Money bid_delta) const override;

  const std::vector<Money>& delta_grid() const { return delta_grid_; }

 private:
  std::vector<Money> delta_grid_;
  // (market, delta index) -> stats.
  std::map<MarketKey, std::vector<EvictionStats>> stats_;
};

}  // namespace proteus

#endif  // SRC_BIDBRAIN_EVICTION_ESTIMATOR_H_
