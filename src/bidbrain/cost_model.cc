#include "src/bidbrain/cost_model.h"

#include <algorithm>
#include <limits>

#include "src/common/logging.h"

namespace proteus {

Money CostModel::ExpectedCost(const std::vector<AllocationPlan>& plans) {
  Money total = 0.0;
  for (const auto& plan : plans) {
    const double hours = std::max(0.0, plan.omega) / kHour;
    total += (1.0 - plan.beta) * plan.hourly_price * plan.count * hours;
  }
  return total;
}

double CostModel::AnyEvictionProbability(const std::vector<AllocationPlan>& plans) {
  double none = 1.0;
  for (const auto& plan : plans) {
    none *= (1.0 - plan.beta);
  }
  return 1.0 - none;
}

SimDuration CostModel::ExpectedUsefulTime(const AllocationPlan& plan,
                                          const std::vector<AllocationPlan>& all,
                                          const AppProfile& app, bool footprint_changing) {
  SimDuration t = plan.omega;
  t -= AnyEvictionProbability(all) * app.lambda;
  if (footprint_changing) {
    t -= app.sigma;
  }
  return std::max(0.0, t);
}

WorkUnits CostModel::ExpectedWork(const std::vector<AllocationPlan>& plans, const AppProfile& app,
                                  bool footprint_changing) {
  WorkUnits total = 0.0;
  for (const auto& plan : plans) {
    const SimDuration dt = ExpectedUsefulTime(plan, plans, app, footprint_changing);
    total += plan.count * (dt / kHour) * plan.work_per_hour;
  }
  return total * app.phi;
}

double CostModel::ExpectedCostPerWork(const std::vector<AllocationPlan>& plans,
                                      const AppProfile& app, bool footprint_changing) {
  const WorkUnits work = ExpectedWork(plans, app, footprint_changing);
  if (work <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return ExpectedCost(plans) / work;
}

}  // namespace proteus
