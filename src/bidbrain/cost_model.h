// BidBrain's expected cost / expected work algebra (§4.1, Eqs. 1-4).
#ifndef SRC_BIDBRAIN_COST_MODEL_H_
#define SRC_BIDBRAIN_COST_MODEL_H_

#include <vector>

#include "src/bidbrain/app_profile.h"
#include "src/common/types.h"
#include "src/market/trace_store.h"

namespace proteus {

// One allocation as the cost model sees it — either an existing element
// of the footprint or a candidate under consideration.
struct AllocationPlan {
  MarketKey market;
  int count = 0;                // k_i.
  Money hourly_price = 0.0;     // P_i: what the hour is billed at.
  double beta = 0.0;            // Eviction probability within the hour.
  SimDuration omega = kHour;    // Max useful compute remaining (Table 2).
  WorkUnits work_per_hour = 0;  // nu per instance (vCPU count).
  bool on_demand = false;       // On-demand: beta = 0, never terminated.
};

class CostModel {
 public:
  // Eq. 1 summed over allocations: each allocation costs
  // (1 - beta) * P * k * t_r, with t_r = omega in hours; eviction makes
  // the hour free.
  static Money ExpectedCost(const std::vector<AllocationPlan>& plans);

  // Eq. 2: expected useful compute time for one allocation given the set:
  // delta_t = omega - (1 - prod(1 - beta_j)) * lambda - sigma_if_changing.
  static SimDuration ExpectedUsefulTime(const AllocationPlan& plan,
                                        const std::vector<AllocationPlan>& all,
                                        const AppProfile& app, bool footprint_changing);

  // Eq. 3: WA = (sum k_i * delta_t_i * nu_i) * phi.
  static WorkUnits ExpectedWork(const std::vector<AllocationPlan>& plans, const AppProfile& app,
                                bool footprint_changing);

  // Eq. 4: EA = CA / WA ($ per work unit). Returns +infinity for
  // non-positive expected work.
  static double ExpectedCostPerWork(const std::vector<AllocationPlan>& plans,
                                    const AppProfile& app, bool footprint_changing);

  // Probability at least one allocation in the set is evicted.
  static double AnyEvictionProbability(const std::vector<AllocationPlan>& plans);
};

}  // namespace proteus

#endif  // SRC_BIDBRAIN_COST_MODEL_H_
