#include "src/bidbrain/demand.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace proteus {

namespace {
int ClampSlots(double slots, int max_slots) {
  if (slots <= 0.0) {
    return 0;
  }
  return std::min(max_slots, static_cast<int>(std::ceil(slots - 1e-9)));
}
}  // namespace

int TruthfulDemandReporter::Report(const TenantProgress& progress, Rng& rng) {
  (void)rng;
  return std::clamp(progress.true_need, 0, progress.max_slots);
}

InflateDemandReporter::InflateDemandReporter(double factor) : factor_(factor) {
  PROTEUS_CHECK_GE(factor_, 1.0);
}

std::string InflateDemandReporter::name() const {
  return "inflate_x" + std::to_string(factor_).substr(0, 4);
}

int InflateDemandReporter::Report(const TenantProgress& progress, Rng& rng) {
  (void)rng;
  // Inflated reports may exceed the tenant's own scalability cap: the
  // whole point of misreporting is to claim more than you can use.
  const double inflated = progress.true_need * factor_;
  return ClampSlots(inflated, std::max(progress.max_slots * 4, progress.max_slots));
}

MaxDemandReporter::MaxDemandReporter(double factor) : factor_(factor) {
  PROTEUS_CHECK_GE(factor_, 1.0);
}

std::string MaxDemandReporter::name() const {
  return "always_max_x" + std::to_string(factor_).substr(0, 4);
}

int MaxDemandReporter::Report(const TenantProgress& progress, Rng& rng) {
  (void)rng;
  return static_cast<int>(std::ceil(progress.max_slots * factor_));
}

PolicyDemandReporter::PolicyDemandReporter(const AcquisitionPolicy* policy, MarketKey slot_market,
                                           Money slot_bid)
    : policy_(policy), slot_market_(std::move(slot_market)), slot_bid_(slot_bid) {
  PROTEUS_CHECK(policy_ != nullptr);
}

std::string PolicyDemandReporter::name() const { return "policy:" + policy_->name(); }

int PolicyDemandReporter::Report(const TenantProgress& progress, Rng& rng) {
  (void)rng;
  // Present the tenant's footprint as one live spot allocation so the
  // policy reasons about it the way it reasons about a solo job.
  std::vector<LiveAllocation> live;
  constexpr AllocationId kHeldId = 0;
  if (progress.held_slots > 0) {
    live.push_back({kHeldId, slot_market_, progress.held_slots, slot_bid_, false,
                    progress.now - progress.round});
  }
  int demand = progress.held_slots;
  for (const BidAction& action : policy_->Decide(progress.now, live)) {
    if (action.kind == BidAction::Kind::kAcquire) {
      demand += action.count;
    } else if (action.target == kHeldId && progress.held_slots > 0) {
      demand -= progress.held_slots;
    }
  }
  // A policy-driven tenant never asks for more than it can use.
  return std::clamp(std::min(demand, progress.true_need), 0, progress.max_slots);
}

}  // namespace proteus
