#include "src/bidbrain/bidbrain.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace proteus {

BidBrain::BidBrain(const InstanceTypeCatalog* catalog, const TraceStore* prices,
                   const EvictionModel* estimator, BidBrainConfig config)
    : catalog_(catalog), prices_(prices), estimator_(estimator), config_(std::move(config)) {
  PROTEUS_CHECK(catalog_ != nullptr);
  PROTEUS_CHECK(prices_ != nullptr);
  PROTEUS_CHECK(estimator_ != nullptr);
}

void BidBrain::SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  decisions_counter_ = nullptr;
  acquire_counter_ = nullptr;
  terminate_counter_ = nullptr;
  cost_per_work_gauge_ = nullptr;
  if (metrics != nullptr) {
    decisions_counter_ = metrics->GetCounter("bidbrain.decisions");
    acquire_counter_ = metrics->GetCounter("bidbrain.actions", {{"kind", "acquire"}});
    terminate_counter_ = metrics->GetCounter("bidbrain.actions", {{"kind", "terminate"}});
    cost_per_work_gauge_ = metrics->GetGauge("bidbrain.cost_per_work");
  }
}

AllocationPlan BidBrain::PlanFor(SimTime now, const LiveAllocation& alloc) const {
  AllocationPlan plan;
  plan.market = alloc.market;
  plan.count = alloc.count;
  plan.on_demand = alloc.on_demand;
  const InstanceType& type = catalog_->Get(alloc.market.instance_type);
  // Time remaining in the allocation's current billing hour.
  const double elapsed = now - alloc.start;
  const double into_hour = elapsed - kHour * std::floor(elapsed / kHour);
  const SimDuration remaining = kHour - into_hour;
  if (alloc.on_demand) {
    plan.hourly_price = type.on_demand_price;
    plan.beta = 0.0;
    plan.omega = remaining;
    plan.work_per_hour = config_.on_demand_work_per_hour;
    return plan;
  }
  const Money price = prices_->Get(alloc.market).PriceAt(now);
  plan.hourly_price = price;
  const Money delta = std::max(0.0, alloc.bid - price);
  const EvictionStats stats = estimator_->Estimate(alloc.market, delta);
  plan.beta = stats.beta;
  plan.omega = remaining;
  // "If BidBrain expects the allocation to be evicted prior to the end of
  // the billing hour, it reduces omega accordingly."
  if (stats.beta > 0.5) {
    plan.omega = std::min(plan.omega, stats.median_time_to_eviction);
  }
  plan.work_per_hour = type.WorkPerHour();
  return plan;
}

std::vector<AllocationPlan> BidBrain::PlansFor(SimTime now,
                                               const std::vector<LiveAllocation>& live) const {
  std::vector<AllocationPlan> plans;
  plans.reserve(live.size());
  for (const auto& alloc : live) {
    plans.push_back(PlanFor(now, alloc));
  }
  return plans;
}

double BidBrain::FootprintCostPerWork(SimTime now,
                                      const std::vector<LiveAllocation>& live) const {
  return CostModel::ExpectedCostPerWork(PlansFor(now, live), config_.app,
                                        /*footprint_changing=*/false);
}

std::vector<BidAction> BidBrain::Decide(SimTime now,
                                        const std::vector<LiveAllocation>& live) const {
  std::vector<BidAction> actions;
  std::vector<AllocationPlan> current = PlansFor(now, live);
  const double current_cpw =
      CostModel::ExpectedCostPerWork(current, config_.app, /*footprint_changing=*/false);

  int spot_count = 0;
  for (const auto& alloc : live) {
    if (!alloc.on_demand) {
      spot_count += alloc.count;
    }
  }

  // --- Acquisition: best (market, delta) candidate, if it helps ---
  std::optional<BidAction> chosen;        // Acquisition taken this decision.
  std::optional<AllocationPlan> chosen_plan;
  Money chosen_delta = 0.0;
  const int headroom = config_.max_spot_instances - spot_count;
  if (headroom > 0) {
    const int count = std::min(config_.allocation_quantum, headroom);
    double best_cpw = std::numeric_limits<double>::infinity();
    std::optional<BidAction> best;
    std::optional<AllocationPlan> best_plan;
    Money best_delta = 0.0;
    for (const MarketKey& market : prices_->Keys()) {
      const InstanceType* type = catalog_->Find(market.instance_type);
      if (type == nullptr) {
        continue;
      }
      const Money price = prices_->Get(market).PriceAt(now);
      for (const Money delta : config_.bid_deltas) {
        const EvictionStats stats = estimator_->Estimate(market, delta);
        AllocationPlan cand;
        cand.market = market;
        cand.count = count;
        cand.hourly_price = price;
        cand.beta = stats.beta;
        cand.omega = stats.beta > 0.5 ? std::min(kHour, stats.median_time_to_eviction) : kHour;
        cand.work_per_hour = type->WorkPerHour();
        std::vector<AllocationPlan> with = current;
        with.push_back(cand);
        const double cpw =
            CostModel::ExpectedCostPerWork(with, config_.app, /*footprint_changing=*/true);
        if (cpw < best_cpw) {
          best_cpw = cpw;
          best = BidAction{BidAction::Kind::kAcquire, market, count, price + delta,
                           kInvalidAllocation};
          best_plan = cand;
          best_delta = delta;
        }
      }
    }
    if (best.has_value() && best_cpw < current_cpw * (1.0 - config_.improvement_margin)) {
      actions.push_back(*best);
      chosen = best;
      chosen_plan = best_plan;
      chosen_delta = best_delta;
      // Renewal decisions below evaluate the footprint as it will be
      // after this acquisition (the terminate-vs-renew comparison should
      // not treat soon-to-be-replaced capacity as irreplaceable).
      current.push_back(*best_plan);
    }
  }

  // --- Renewal: terminate allocations whose renewal raises cost/work ---
  for (std::size_t i = 0; i < live.size(); ++i) {
    const LiveAllocation& alloc = live[i];
    if (alloc.on_demand) {
      continue;  // Never terminated by BidBrain (§4.2).
    }
    const double elapsed = now - alloc.start;
    const double into_hour = elapsed - kHour * std::floor(elapsed / kHour);
    const SimDuration remaining = kHour - into_hour;
    if (remaining > config_.renewal_lead) {
      continue;  // Not near a billing boundary yet.
    }
    // Renewed: this allocation restarts a full hour at the current price.
    std::vector<AllocationPlan> renewed = current;
    renewed[i].omega = kHour;
    renewed[i].hourly_price = prices_->Get(alloc.market).PriceAt(now);
    const double cpw_renewed =
        CostModel::ExpectedCostPerWork(renewed, config_.app, /*footprint_changing=*/false);
    // Terminated: footprint without it (and we pay the resize overhead).
    std::vector<AllocationPlan> without;
    for (std::size_t j = 0; j < current.size(); ++j) {
      if (j != i) {
        without.push_back(current[j]);
      }
    }
    for (auto& plan : without) {
      plan.omega = kHour;  // Compare steady-state going forward.
    }
    const double cpw_without =
        CostModel::ExpectedCostPerWork(without, config_.app, /*footprint_changing=*/true);
    if (cpw_without < cpw_renewed) {
      actions.push_back(
          {BidAction::Kind::kTerminate, alloc.market, alloc.count, alloc.bid, alloc.id});
    }
  }

  int terminations = 0;
  for (const auto& action : actions) {
    if (action.kind == BidAction::Kind::kTerminate) {
      ++terminations;
    }
  }
  if (decisions_counter_ != nullptr) {
    decisions_counter_->Increment();
  }
  if (acquire_counter_ != nullptr && chosen.has_value()) {
    acquire_counter_->Increment();
  }
  if (terminate_counter_ != nullptr && terminations > 0) {
    terminate_counter_->Add(static_cast<std::uint64_t>(terminations));
  }
  if (cost_per_work_gauge_ != nullptr) {
    cost_per_work_gauge_->Set(current_cpw);
  }
  if (tracer_ != nullptr) {
    obs::TraceArgs args = {{"E_A", current_cpw},
                           {"spot_instances", static_cast<std::int64_t>(spot_count)},
                           {"terminations", static_cast<std::int64_t>(terminations)}};
    if (chosen.has_value()) {
      args.emplace_back("market",
                        chosen->market.zone + "/" + chosen->market.instance_type);
      args.emplace_back("bid", chosen->bid);
      args.emplace_back("delta", chosen_delta);
      args.emplace_back("beta", chosen_plan->beta);
      args.emplace_back("count", static_cast<std::int64_t>(chosen->count));
    }
    tracer_->InstantAt(now, "decision", "bidbrain", args);
  }
  return actions;
}

}  // namespace proteus
