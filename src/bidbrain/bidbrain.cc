#include "src/bidbrain/bidbrain.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace proteus {

BidBrain::BidBrain(const InstanceTypeCatalog* catalog, const TraceStore* prices,
                   const EvictionModel* estimator, BidBrainConfig config)
    : catalog_(catalog), prices_(prices), estimator_(estimator), config_(std::move(config)) {
  PROTEUS_CHECK(catalog_ != nullptr);
  PROTEUS_CHECK(prices_ != nullptr);
  PROTEUS_CHECK(estimator_ != nullptr);
}

AllocationPlan BidBrain::PlanFor(SimTime now, const LiveAllocation& alloc) const {
  AllocationPlan plan;
  plan.market = alloc.market;
  plan.count = alloc.count;
  plan.on_demand = alloc.on_demand;
  const InstanceType& type = catalog_->Get(alloc.market.instance_type);
  // Time remaining in the allocation's current billing hour.
  const double elapsed = now - alloc.start;
  const double into_hour = elapsed - kHour * std::floor(elapsed / kHour);
  const SimDuration remaining = kHour - into_hour;
  if (alloc.on_demand) {
    plan.hourly_price = type.on_demand_price;
    plan.beta = 0.0;
    plan.omega = remaining;
    plan.work_per_hour = config_.on_demand_work_per_hour;
    return plan;
  }
  const Money price = prices_->Get(alloc.market).PriceAt(now);
  plan.hourly_price = price;
  const Money delta = std::max(0.0, alloc.bid - price);
  const EvictionStats stats = estimator_->Estimate(alloc.market, delta);
  plan.beta = stats.beta;
  plan.omega = remaining;
  // "If BidBrain expects the allocation to be evicted prior to the end of
  // the billing hour, it reduces omega accordingly."
  if (stats.beta > 0.5) {
    plan.omega = std::min(plan.omega, stats.median_time_to_eviction);
  }
  plan.work_per_hour = type.WorkPerHour();
  return plan;
}

std::vector<AllocationPlan> BidBrain::PlansFor(SimTime now,
                                               const std::vector<LiveAllocation>& live) const {
  std::vector<AllocationPlan> plans;
  plans.reserve(live.size());
  for (const auto& alloc : live) {
    plans.push_back(PlanFor(now, alloc));
  }
  return plans;
}

double BidBrain::FootprintCostPerWork(SimTime now,
                                      const std::vector<LiveAllocation>& live) const {
  return CostModel::ExpectedCostPerWork(PlansFor(now, live), config_.app,
                                        /*footprint_changing=*/false);
}

std::vector<BidAction> BidBrain::Decide(SimTime now,
                                        const std::vector<LiveAllocation>& live) const {
  std::vector<BidAction> actions;
  std::vector<AllocationPlan> current = PlansFor(now, live);
  const double current_cpw =
      CostModel::ExpectedCostPerWork(current, config_.app, /*footprint_changing=*/false);

  int spot_count = 0;
  for (const auto& alloc : live) {
    if (!alloc.on_demand) {
      spot_count += alloc.count;
    }
  }

  // --- Acquisition: best (market, delta) candidate, if it helps ---
  const int headroom = config_.max_spot_instances - spot_count;
  if (headroom > 0) {
    const int count = std::min(config_.allocation_quantum, headroom);
    double best_cpw = std::numeric_limits<double>::infinity();
    std::optional<BidAction> best;
    std::optional<AllocationPlan> best_plan;
    for (const MarketKey& market : prices_->Keys()) {
      const InstanceType* type = catalog_->Find(market.instance_type);
      if (type == nullptr) {
        continue;
      }
      const Money price = prices_->Get(market).PriceAt(now);
      for (const Money delta : config_.bid_deltas) {
        const EvictionStats stats = estimator_->Estimate(market, delta);
        AllocationPlan cand;
        cand.market = market;
        cand.count = count;
        cand.hourly_price = price;
        cand.beta = stats.beta;
        cand.omega = stats.beta > 0.5 ? std::min(kHour, stats.median_time_to_eviction) : kHour;
        cand.work_per_hour = type->WorkPerHour();
        std::vector<AllocationPlan> with = current;
        with.push_back(cand);
        const double cpw =
            CostModel::ExpectedCostPerWork(with, config_.app, /*footprint_changing=*/true);
        if (cpw < best_cpw) {
          best_cpw = cpw;
          best = BidAction{BidAction::Kind::kAcquire, market, count, price + delta,
                           kInvalidAllocation};
          best_plan = cand;
        }
      }
    }
    if (best.has_value() && best_cpw < current_cpw * (1.0 - config_.improvement_margin)) {
      actions.push_back(*best);
      // Renewal decisions below evaluate the footprint as it will be
      // after this acquisition (the terminate-vs-renew comparison should
      // not treat soon-to-be-replaced capacity as irreplaceable).
      current.push_back(*best_plan);
    }
  }

  // --- Renewal: terminate allocations whose renewal raises cost/work ---
  for (std::size_t i = 0; i < live.size(); ++i) {
    const LiveAllocation& alloc = live[i];
    if (alloc.on_demand) {
      continue;  // Never terminated by BidBrain (§4.2).
    }
    const double elapsed = now - alloc.start;
    const double into_hour = elapsed - kHour * std::floor(elapsed / kHour);
    const SimDuration remaining = kHour - into_hour;
    if (remaining > config_.renewal_lead) {
      continue;  // Not near a billing boundary yet.
    }
    // Renewed: this allocation restarts a full hour at the current price.
    std::vector<AllocationPlan> renewed = current;
    renewed[i].omega = kHour;
    renewed[i].hourly_price = prices_->Get(alloc.market).PriceAt(now);
    const double cpw_renewed =
        CostModel::ExpectedCostPerWork(renewed, config_.app, /*footprint_changing=*/false);
    // Terminated: footprint without it (and we pay the resize overhead).
    std::vector<AllocationPlan> without;
    for (std::size_t j = 0; j < current.size(); ++j) {
      if (j != i) {
        without.push_back(current[j]);
      }
    }
    for (auto& plan : without) {
      plan.omega = kHour;  // Compare steady-state going forward.
    }
    const double cpw_without =
        CostModel::ExpectedCostPerWork(without, config_.app, /*footprint_changing=*/true);
    if (cpw_without < cpw_renewed) {
      actions.push_back(
          {BidAction::Kind::kTerminate, alloc.market, alloc.count, alloc.bid, alloc.id});
    }
  }
  return actions;
}

}  // namespace proteus
