#include "src/bidbrain/tier_policy.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "src/common/logging.h"

namespace proteus {

namespace {

constexpr double kEps = 1e-6;

// Effective $ per useful vCPU-hour: price inflated by the expected
// fraction of the hour's work a loss destroys.
double Effective(double price_per_vcpu_hour, double beta, double penalty) {
  const double useful = std::max(kEps, 1.0 - beta * penalty);
  return price_per_vcpu_hour / useful;
}

int LiveSpotVcpus(const InstanceTypeCatalog& catalog, const std::vector<LiveAllocation>& live) {
  int vcpus = 0;
  for (const LiveAllocation& alloc : live) {
    if (alloc.on_demand) {
      continue;
    }
    const InstanceType* type = catalog.Find(alloc.market.instance_type);
    if (type != nullptr) {
      vcpus += alloc.count * type->vcpus;
    }
  }
  return vcpus;
}

}  // namespace

TieredAcquisitionPolicy::TieredAcquisitionPolicy(const InstanceTypeCatalog* catalog,
                                                 const TraceStore* prices,
                                                 const EvictionModel* estimator,
                                                 TieredPolicyConfig config)
    : catalog_(catalog), prices_(prices), estimator_(estimator), config_(std::move(config)) {
  PROTEUS_CHECK(catalog_ != nullptr);
  PROTEUS_CHECK(prices_ != nullptr);
  PROTEUS_CHECK(estimator_ != nullptr);
  PROTEUS_CHECK_GT(config_.target_vcpus, 0);
  PROTEUS_CHECK_GE(config_.bid_delta, 0.0);
  PROTEUS_CHECK_GT(config_.serverless_slot_vcpus, 0);
  PROTEUS_CHECK_GE(config_.serverless_beta, 0.0);
  PROTEUS_CHECK_LE(config_.serverless_beta, 1.0);
  PROTEUS_CHECK_GE(config_.max_serverless_fraction, 0.0);
  PROTEUS_CHECK_LE(config_.max_serverless_fraction, 1.0);
  PROTEUS_CHECK_GE(config_.min_reliable_fraction, 0.0);
  PROTEUS_CHECK_LE(config_.min_reliable_fraction, 1.0);
}

std::string TieredAcquisitionPolicy::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "tiered_%.2f", config_.serverless_beta);
  return buf;
}

bool TieredAcquisitionPolicy::BestSpotMarket(SimTime now, MarketKey* market, Money* price,
                                             double* effective) const {
  const MarketKey* best = nullptr;
  double best_effective = std::numeric_limits<double>::infinity();
  Money best_price = 0.0;
  const std::vector<MarketKey> markets = prices_->Keys();
  for (const MarketKey& key : markets) {
    const InstanceType* type = catalog_->Find(key.instance_type);
    if (type == nullptr || type->vcpus <= 0) {
      continue;
    }
    const Money p = prices_->Get(key).PriceAt(now);
    const EvictionStats stats = estimator_->Estimate(key, config_.bid_delta);
    const double eff = Effective((p + config_.bid_delta) / type->vcpus, stats.beta,
                                 config_.transient_loss_penalty);
    if (eff < best_effective) {
      best_effective = eff;
      best = &key;
      best_price = p;
    }
  }
  if (best == nullptr) {
    return false;
  }
  *market = *best;
  *price = best_price;
  *effective = best_effective;
  return true;
}

TierSplit TieredAcquisitionPolicy::ComputeSplit(SimTime now) const {
  TierSplit split;
  const InstanceType& reliable_type = catalog_->Get(config_.reliable_type);
  split.reliable_effective =
      Effective(reliable_type.on_demand_price / reliable_type.vcpus, /*beta=*/0.0,
                /*penalty=*/0.0);
  split.serverless_effective =
      Effective(config_.serverless_price_per_slot_hour / config_.serverless_slot_vcpus,
                config_.serverless_beta, config_.serverless_loss_penalty);
  MarketKey spot_market;
  Money spot_price = 0.0;
  const bool have_spot =
      BestSpotMarket(now, &spot_market, &spot_price, &split.transient_effective);
  if (!have_spot) {
    split.transient_effective = std::numeric_limits<double>::infinity();
  }

  // The reliable floor is non-negotiable (the serving tier), then the
  // remainder fills cheapest-effective-first with the serverless share
  // clamped to its exposure cap.
  const int target = config_.target_vcpus;
  split.reliable_vcpus =
      std::min(target, static_cast<int>(config_.min_reliable_fraction * target + 0.999999));
  int remaining = target - split.reliable_vcpus;
  const int serverless_cap = static_cast<int>(config_.max_serverless_fraction * target);
  if (split.serverless_effective < split.transient_effective) {
    split.serverless_vcpus = std::min(remaining, serverless_cap);
    remaining -= split.serverless_vcpus;
    split.transient_vcpus = remaining;
  } else {
    split.transient_vcpus = remaining;
  }
  // If spot is unusable (no priced market), overflow the transient share
  // into serverless up to the cap rather than stalling the job.
  if (!have_spot && split.transient_vcpus > 0) {
    const int shift = std::min(split.transient_vcpus, serverless_cap - split.serverless_vcpus);
    if (shift > 0) {
      split.serverless_vcpus += shift;
      split.transient_vcpus -= shift;
    }
  }
  return split;
}

int TieredAcquisitionPolicy::ServerlessSlotTarget(SimTime now) const {
  return ComputeSplit(now).serverless_vcpus / config_.serverless_slot_vcpus;
}

std::vector<BidAction> TieredAcquisitionPolicy::Decide(
    SimTime now, const std::vector<LiveAllocation>& live) const {
  const TierSplit split = ComputeSplit(now);
  const int deficit = split.transient_vcpus - LiveSpotVcpus(*catalog_, live);
  if (deficit <= 0) {
    return {};
  }
  MarketKey market;
  Money price = 0.0;
  double effective = 0.0;
  if (!BestSpotMarket(now, &market, &price, &effective)) {
    return {};
  }
  const InstanceType& type = catalog_->Get(market.instance_type);
  const int count = (deficit + type.vcpus - 1) / type.vcpus;
  return {{BidAction::Kind::kAcquire, market, count, price + config_.bid_delta,
           kInvalidAllocation}};
}

}  // namespace proteus
