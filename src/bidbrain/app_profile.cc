#include "src/bidbrain/app_profile.h"

namespace proteus {

AppProfile AgileMLProfile() {
  AppProfile p;
  p.phi = 0.95;
  p.sigma = 30 * kSecond;   // Background incorporation; near-free.
  p.lambda = 60 * kSecond;  // Partition migration within the warning.
  return p;
}

AppProfile CheckpointingProfile() {
  AppProfile p;
  p.phi = 0.95;
  p.sigma = 4 * kMinute;    // Stop, re-shard, restart from checkpoint.
  p.lambda = 10 * kMinute;  // Re-acquire machines + reload + lost work.
  return p;
}

}  // namespace proteus
