// Application characterization parameters consumed by BidBrain (Table 2).
#ifndef SRC_BIDBRAIN_APP_PROFILE_H_
#define SRC_BIDBRAIN_APP_PROFILE_H_

#include "src/common/types.h"

namespace proteus {

struct AppProfile {
  // phi: how efficiently the application scales (0-1]; first-order
  // coefficient of the scalability curve (§4.1). The paper sets these
  // empirically from experiments like our Fig. 15 bench.
  double phi = 0.95;
  // sigma: overhead of adding/removing resources (time the application
  // makes no progress after a footprint change).
  SimDuration sigma = 30 * kSecond;
  // lambda: overhead of an eviction (progress pause while partitions are
  // migrated / state recovered).
  SimDuration lambda = 60 * kSecond;
};

// Profiles used in the evaluation: AgileML recovers from evictions in
// seconds (partition moves), while a checkpointing system loses the work
// since the last checkpoint and pays a full restart.
AppProfile AgileMLProfile();
AppProfile CheckpointingProfile();

}  // namespace proteus

#endif  // SRC_BIDBRAIN_APP_PROFILE_H_
