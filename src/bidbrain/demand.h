// Demand-report seam: how a tenant tells a cluster-level arbiter what it
// wants this round.
//
// Proteus evaluates one BidBrain bidding alone against the market; a
// fleet of tenants competing for shared capacity needs each tenant to
// *report* a per-round demand to the arbiter (src/cluster). Karma-style
// credit mechanisms are interesting precisely because self-interested
// tenants may misreport — so the seam separates a tenant's true need
// (computed by the driver from its progress) from what it chooses to
// report. Reporters are deterministic given (progress, rng stream): the
// fleet driver gives every tenant its own seeded Rng so reports do not
// depend on scheduling or thread count.
#ifndef SRC_BIDBRAIN_DEMAND_H_
#define SRC_BIDBRAIN_DEMAND_H_

#include <memory>
#include <string>

#include "src/bidbrain/acquisition_policy.h"
#include "src/common/rng.h"
#include "src/common/types.h"

namespace proteus {

// The driver's view of one tenant at a round boundary; input to Report().
struct TenantProgress {
  SimTime now = 0.0;
  SimDuration round = kHour;           // Arbitration period.
  int held_slots = 0;                  // Slots currently allocated.
  int true_need = 0;                   // Slots the tenant can actually use.
  int max_slots = 0;                   // Scalability cap.
  double remaining_slot_hours = 0.0;   // Work left.
  SimTime deadline = 0.0;              // +inf when none.
};

// Maps a tenant's progress to the slot demand it reports to the arbiter.
class DemandReporter {
 public:
  virtual ~DemandReporter() = default;

  // Stable identifier for reports/CSV (no commas or newlines).
  virtual std::string name() const = 0;

  // Slots to report for the coming round. `rng` is the tenant's own
  // seeded stream; implementations that draw from it must draw the same
  // number of variates regardless of outcome so streams stay aligned.
  virtual int Report(const TenantProgress& progress, Rng& rng) = 0;
};

// Reports exactly the true need.
class TruthfulDemandReporter : public DemandReporter {
 public:
  std::string name() const override { return "truthful"; }
  int Report(const TenantProgress& progress, Rng& rng) override;
};

// Adversarial: multiplies the true need by `factor` (a greedy user
// overstating how much it could use).
class InflateDemandReporter : public DemandReporter {
 public:
  explicit InflateDemandReporter(double factor);
  std::string name() const override;
  int Report(const TenantProgress& progress, Rng& rng) override;

 private:
  double factor_;
};

// Adversarial: always claims `factor * max_slots`, regardless of need —
// the classic strategy against naive max-bid arbiters.
class MaxDemandReporter : public DemandReporter {
 public:
  explicit MaxDemandReporter(double factor);
  std::string name() const override;
  int Report(const TenantProgress& progress, Rng& rng) override;

 private:
  double factor_;
};

// Bridges an AcquisitionPolicy (e.g. BidBrain) into the demand seam: the
// tenant's held slots are presented as one live spot allocation in the
// fleet's slot market and the policy's acquire/terminate actions are
// folded into a slot count. Cost-aware policies thus modulate demand
// with market conditions (demand collapses when spot is expensive).
class PolicyDemandReporter : public DemandReporter {
 public:
  // `policy` must outlive the reporter. `slot_bid` is the bid the fleet
  // uses per slot (typically the on-demand price).
  PolicyDemandReporter(const AcquisitionPolicy* policy, MarketKey slot_market, Money slot_bid);

  std::string name() const override;
  int Report(const TenantProgress& progress, Rng& rng) override;

 private:
  const AcquisitionPolicy* policy_;
  MarketKey slot_market_;
  Money slot_bid_;
};

}  // namespace proteus

#endif  // SRC_BIDBRAIN_DEMAND_H_
