// BidBrain: Proteus' resource-allocation policy (§4).
//
// At every decision point (periodic, just before a billing-hour boundary,
// and immediately after an eviction) BidBrain enumerates candidate
// allocations — (market, bid delta, count) tuples priced at the current
// spot price — and acquires the best candidate if and only if it lowers
// the footprint's expected cost per unit work (Eq. 4). Near the end of an
// allocation's billing hour it decides whether renewing or terminating
// the allocation yields the lower cost-per-work. On-demand resources are
// acquired as required and never terminated (§4.2), and are modeled as
// producing no work (Fig. 6: the reliable allocation has W = 0 — in
// stages 2/3 reliable machines serve state, they do not run workers).
#ifndef SRC_BIDBRAIN_BIDBRAIN_H_
#define SRC_BIDBRAIN_BIDBRAIN_H_

#include <optional>
#include <string>
#include <vector>

#include "src/bidbrain/acquisition_policy.h"
#include "src/bidbrain/app_profile.h"
#include "src/bidbrain/cost_model.h"
#include "src/bidbrain/eviction_estimator.h"
#include "src/market/instance_type.h"
#include "src/market/trace_store.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace proteus {

struct BidBrainConfig {
  // Bid deltas considered over the current market price (§4.2 range).
  std::vector<Money> bid_deltas = {0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.4};
  // Instances per candidate spot allocation.
  int allocation_quantum = 16;
  // Cap on total spot instances (application scalability limit).
  int max_spot_instances = 192;
  // Periodic decision cadence (§5: every two minutes).
  SimDuration decision_period = 2 * kMinute;
  // Renewal decisions happen this close to a billing-hour end.
  SimDuration renewal_lead = 4 * kMinute;
  // Candidate must beat the current cost-per-work by this relative
  // margin to be acquired (hysteresis against churn).
  double improvement_margin = 0.02;
  AppProfile app;
  // Work produced per on-demand instance per hour (0 per Fig. 6).
  WorkUnits on_demand_work_per_hour = 0.0;
};

// LiveAllocation and BidAction moved to acquisition_policy.h; BidBrain
// is the paper's AcquisitionPolicy instance.
class BidBrain : public AcquisitionPolicy {
 public:
  BidBrain(const InstanceTypeCatalog* catalog, const TraceStore* prices,
           const EvictionModel* estimator, BidBrainConfig config);

  // Attaches BidBrain to an observability sink: every Decide() records a
  // "decision" instant on the "bidbrain" track (timestamped with the
  // caller's market time) carrying E_A, the chosen bid delta, and the
  // candidate's eviction probability beta. Either pointer may be null.
  void SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  std::string name() const override { return "bidbrain"; }

  // Evaluates the footprint at `now` and returns the actions to take.
  std::vector<BidAction> Decide(SimTime now,
                                const std::vector<LiveAllocation>& live) const override;

  // Expected cost-per-work of the given live footprint (diagnostics).
  double FootprintCostPerWork(SimTime now, const std::vector<LiveAllocation>& live) const;

  const BidBrainConfig& config() const { return config_; }

 private:
  AllocationPlan PlanFor(SimTime now, const LiveAllocation& alloc) const;
  std::vector<AllocationPlan> PlansFor(SimTime now,
                                       const std::vector<LiveAllocation>& live) const;

  const InstanceTypeCatalog* catalog_;
  const TraceStore* prices_;
  const EvictionModel* estimator_;
  BidBrainConfig config_;

  // Observability sinks; Decide() is logically const, so recording into
  // external sinks does not touch BidBrain state.
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* decisions_counter_ = nullptr;
  obs::Counter* acquire_counter_ = nullptr;
  obs::Counter* terminate_counter_ = nullptr;
  obs::Gauge* cost_per_work_gauge_ = nullptr;
};

}  // namespace proteus

#endif  // SRC_BIDBRAIN_BIDBRAIN_H_
