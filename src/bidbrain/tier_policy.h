// Tier-aware acquisition: split a capacity target across the three
// reliability tiers on cost vs. expected loss (ISSUE 10).
//
// The paper's BidBrain trades two tiers — reliable on-demand and
// transient spot. The ultra-transient serverless tier adds a third point
// on the cost/reliability frontier: dirt-cheap burstable slots with zero
// eviction warning and a per-hour revocation probability (beta) an order
// of magnitude above spot's. TieredAcquisitionPolicy prices all three
// with one number, the *effective* cost per useful vCPU-hour:
//
//   effective(t) = P_t / max(eps, 1 - beta_t * penalty_t)
//
// where P_t is the tier's dollar price per vCPU-hour, beta_t its
// probability of losing the allocation within the hour, and penalty_t
// the fraction of an hour's useful work destroyed when that loss lands
// (rollback depth, re-preload, detector latency — zero-warning losses
// carry a larger penalty than warned drains). Capacity then fills
// cheapest-effective-first, subject to a reliable floor and a serverless
// exposure cap that mirrors the runtime-side TierGuard bound.
//
// Decide() emits spot-market actions only (the transient share), so the
// policy is backtestable through the existing BacktestEngine unchanged;
// drivers that own a serverless tier (ProteusRuntime) read the
// recommended slot count via ComputeSplit()/ServerlessSlotTarget().
#ifndef SRC_BIDBRAIN_TIER_POLICY_H_
#define SRC_BIDBRAIN_TIER_POLICY_H_

#include <string>
#include <vector>

#include "src/bidbrain/acquisition_policy.h"
#include "src/bidbrain/eviction_estimator.h"
#include "src/market/instance_type.h"
#include "src/market/trace_store.h"

namespace proteus {

struct TieredPolicyConfig {
  int target_vcpus = 512;  // Total capacity target across all tiers.

  // Reliable tier (on-demand): beta = 0 by definition; priced at the
  // catalog's on-demand rate for this type. The floor is what the
  // serving tier needs regardless of economics.
  std::string reliable_type = "c4.xlarge";
  double min_reliable_fraction = 0.05;

  // Transient tier (spot): bid (current price + delta); beta comes from
  // the trained EvictionModel at that delta. Warned drains destroy
  // little work.
  Money bid_delta = 0.02;
  double transient_loss_penalty = 0.25;

  // Ultra-transient tier (serverless): fixed slot pricing, zero
  // warning. beta_serverless should fold in both the burst-duration cap
  // and the storm rate (see ServerlessTierConfig); the penalty is the
  // largest of the three because every loss is silent (detector latency
  // + rollback to the last clean backup).
  Money serverless_price_per_slot_hour = 0.012;
  int serverless_slot_vcpus = 2;
  double serverless_beta = 0.30;
  double serverless_loss_penalty = 0.75;
  // Cap on the serverless share of target_vcpus; keep this at or below
  // the runtime TierGuard's max_worker_fraction or admission will clamp.
  double max_serverless_fraction = 0.4;
};

// One evaluated capacity split, exposed for drivers and tests.
struct TierSplit {
  int reliable_vcpus = 0;
  int transient_vcpus = 0;
  int serverless_vcpus = 0;
  // Effective $ per useful vCPU-hour each tier was scored at.
  double reliable_effective = 0.0;
  double transient_effective = 0.0;
  double serverless_effective = 0.0;
};

class TieredAcquisitionPolicy : public AcquisitionPolicy {
 public:
  TieredAcquisitionPolicy(const InstanceTypeCatalog* catalog, const TraceStore* prices,
                          const EvictionModel* estimator, TieredPolicyConfig config);

  std::string name() const override;

  // Emits spot acquisitions topping the *transient* share of the split
  // up to its target; the reliable floor and serverless share belong to
  // the driver (BacktestEngine models them as the fixed on-demand tier
  // and nothing, respectively).
  std::vector<BidAction> Decide(SimTime now,
                                const std::vector<LiveAllocation>& live) const override;

  // The full three-way split at `now` given the live footprint.
  TierSplit ComputeSplit(SimTime now) const;

  // Convenience: the serverless share expressed in slots (vcpus /
  // slot_vcpus, rounded down). ProteusRuntime feeds this into
  // serverless_target-style admission.
  int ServerlessSlotTarget(SimTime now) const;

  const TieredPolicyConfig& config() const { return config_; }

 private:
  // Best spot market right now by effective cost per useful vCPU-hour
  // (price+delta, beta from the estimator). Returns false if no market
  // has a usable price.
  bool BestSpotMarket(SimTime now, MarketKey* market, Money* price, double* effective) const;

  const InstanceTypeCatalog* catalog_;
  const TraceStore* prices_;
  const EvictionModel* estimator_;
  TieredPolicyConfig config_;
};

}  // namespace proteus

#endif  // SRC_BIDBRAIN_TIER_POLICY_H_
