// AcquisitionPolicy: the resource-acquisition seam extracted from
// BidBrain (§4).
//
// A policy maps (market time, current live footprint) to a list of
// acquisition / termination actions. BidBrain is the paper's instance;
// the Policy Lab (src/backtest) implements baseline policies behind the
// same interface and replays all of them over historical price traces
// (DESIGN.md §9). Drivers that speak this interface — JobSimulator's
// policy-driven run path and the backtest engine — are agnostic to what
// sits behind it.
//
// Contract:
//  - Decide() must be a pure function of (now, live) and the policy's
//    construction-time inputs: the backtest engine runs one policy
//    instance per cell, possibly concurrently with other instances, and
//    depends on same-inputs => same-actions for byte-identical replays.
//    Policies that need randomness must own a seeded Rng behind mutable
//    state keyed off construction parameters, never global state.
//  - Decide() may assume `live` reflects every action the driver
//    accepted so far; it must not assume every requested acquisition was
//    granted (the market declines bids below the current price).
//  - OnDemandDoesWork() selects the driver's footprint semantics: true
//    means on-demand instances are the worker fleet (the all-on-demand
//    reference scheme); false means on-demand is the reliable serving
//    tier modeled with W = 0 (Fig. 6) and spot instances do the work.
#ifndef SRC_BIDBRAIN_ACQUISITION_POLICY_H_
#define SRC_BIDBRAIN_ACQUISITION_POLICY_H_

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/market/trace_store.h"

namespace proteus {

// The driver's view of one live allocation, passed to Decide().
struct LiveAllocation {
  AllocationId id = kInvalidAllocation;
  MarketKey market;
  int count = 0;
  Money bid = 0.0;
  bool on_demand = false;
  SimTime start = 0.0;
};

struct BidAction {
  enum class Kind {
    kAcquire,    // Request `count` instances in `market` at `bid`.
    kTerminate,  // Terminate allocation `target` before its next hour.
  };
  Kind kind = Kind::kAcquire;
  MarketKey market;
  int count = 0;
  Money bid = 0.0;
  AllocationId target = kInvalidAllocation;
};

class AcquisitionPolicy {
 public:
  virtual ~AcquisitionPolicy() = default;

  // Stable identifier used in backtest reports and CSV output. Must not
  // contain commas or newlines (it becomes a CSV field and a metric
  // label).
  virtual std::string name() const = 0;

  // Evaluates the footprint at `now` and returns the actions to take.
  virtual std::vector<BidAction> Decide(SimTime now,
                                        const std::vector<LiveAllocation>& live) const = 0;

  // Whether the driver should treat on-demand instances as workers (see
  // the header comment). Defaults to the AgileML serving-tier semantics.
  virtual bool OnDemandDoesWork() const { return false; }
};

}  // namespace proteus

#endif  // SRC_BIDBRAIN_ACQUISITION_POLICY_H_
