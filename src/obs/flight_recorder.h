// FlightRecorder: a bounded ring of recent ledger events per component,
// dumped to disk when something goes wrong.
//
// The recorder subscribes to an EventLedger and keeps, for every
// component ("agileml", "rpc", "chaos", ...), the ids of the last N
// events that component recorded. When a ConsistencyAuditor violation
// fires, a PROTEUS_CHECK/DCHECK aborts (via the logging fatal hook), or
// chaos_soak exits non-zero, Dump() writes a JSON post-mortem: the
// trigger reason, the anchor event's full causal chain back to the
// root, and each component's recent-event window — so a soak failure
// ships the evidence instead of just a seed number.
//
// The rings are arrays of atomic event ids with a monotonically
// increasing write cursor: the writer (called under the ledger's lock,
// so effectively single-threaded) never blocks on a reader, and a
// concurrent Dump() sees a consistent-enough window without taking any
// lock on the hot path. Event payloads are fetched from the ledger at
// dump time, so the rings stay tiny (8 bytes per slot).
#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/ledger.h"

namespace proteus {
namespace obs {

class FlightRecorder {
 public:
  // Subscribes to `ledger` (installs itself as the ledger observer).
  // The ledger must outlive the recorder.
  explicit FlightRecorder(EventLedger* ledger, std::size_t ring_capacity = 512);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Where auto-dumps (auditor violations, fatal hook) land.
  void SetDumpPath(std::string path);
  const std::string& dump_path() const { return dump_path_; }

  // Renders the post-mortem: {"reason","anchor","chain":[...],
  // "components":{name:[events oldest->newest]}}. Anchor kNoEvent =>
  // no chain (e.g. a fatal with no event in hand); the chain walks
  // anchor -> parent -> ... -> root through the full ledger, not just
  // the rings, so it always reaches the violating event's cause.
  std::string DumpToString(const std::string& reason, EventId anchor = kNoEvent) const;

  // Writes DumpToString to `path` / to the configured dump path.
  // Returns false (and logs) on I/O failure.
  bool DumpToFile(const std::string& path, const std::string& reason,
                  EventId anchor = kNoEvent) const;
  bool Dump(const std::string& reason, EventId anchor = kNoEvent) const;

  // Routes PROTEUS_CHECK/PROTEUS_DCHECK failures through this recorder:
  // the fatal log message becomes the dump reason and the most recent
  // event the anchor. Only one recorder can hold the hook; destruction
  // releases it.
  void InstallFatalHook();

  std::size_t ring_capacity() const { return capacity_; }

 private:
  struct Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}
    std::vector<std::atomic<EventId>> slots;
    std::atomic<std::uint64_t> next{0};  // Total writes; slot = next % capacity.
  };

  void OnEvent(const LedgerEvent& event);
  // Snapshot of one ring, oldest -> newest.
  std::vector<EventId> RingContents(const Ring& ring) const;

  EventLedger* ledger_;
  const std::size_t capacity_;
  std::string dump_path_ = "flight_recorder.json";
  std::atomic<EventId> last_event_{kNoEvent};
  mutable std::mutex rings_mu_;  // Guards the map shape, not the slots.
  std::map<std::string, std::unique_ptr<Ring>> rings_;
};

}  // namespace obs
}  // namespace proteus

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
