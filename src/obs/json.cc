#include "src/obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/common/logging.h"

namespace proteus {
namespace obs {

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string FormatJsonDouble(double v) {
  if (!std::isfinite(v)) {
    v = 0.0;  // JSON has no NaN/Infinity literal.
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void AppendJsonNumber(std::string& out, double v) { out += FormatJsonDouble(v); }

void AppendJsonNumber(std::string& out, std::int64_t v) { out += std::to_string(v); }

// ---------------------------------------------------------------------
// Parser.

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWs();
    if (!ParseValue(out)) {
      if (error != nullptr) {
        *error = error_ + " at byte " + std::to_string(pos_);
      }
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing content at byte " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool Fail(const char* why) {
    if (error_.empty()) {
      error_ = why;
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        if (!ConsumeLiteral("true")) return Fail("bad literal");
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return true;
      case 'f':
        if (!ConsumeLiteral("false")) return Fail("bad literal");
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return true;
      case 'n':
        if (!ConsumeLiteral("null")) return Fail("bad literal");
        out->type = JsonValue::Type::kNull;
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipWs();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->fields.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->items.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // Opening quote.
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return Fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("short \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // Our writers only emit \u00XX; encode the BMP code point as
          // UTF-8 so round-trips of foreign files stay lossless.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xc0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            *out += static_cast<char>(0xe0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            *out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("bad number");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : fields) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

double JsonValue::NumberField(std::string_view key, double def) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->type == Type::kNumber) ? v->number : def;
}

std::int64_t JsonValue::IntField(std::string_view key, std::int64_t def) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->type == Type::kNumber) ? static_cast<std::int64_t>(v->number)
                                                    : def;
}

std::string JsonValue::StringField(std::string_view key, std::string def) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->type == Type::kString) ? v->str : def;
}

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  return Parser(text).Parse(out, error);
}

bool ParseJsonLines(std::string_view text, std::vector<JsonValue>* out,
                    std::string* error) {
  std::size_t line_start = 0;
  int line_no = 0;
  while (line_start <= text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string_view::npos) {
      line_end = text.size();
    }
    const std::string_view line = text.substr(line_start, line_end - line_start);
    ++line_no;
    if (!line.empty()) {
      JsonValue value;
      std::string line_error;
      if (!ParseJson(line, &value, &line_error)) {
        if (error != nullptr) {
          *error = "line " + std::to_string(line_no) + ": " + line_error;
        }
        return false;
      }
      out->push_back(std::move(value));
    }
    if (line_end == text.size()) {
      break;
    }
    line_start = line_end + 1;
  }
  return true;
}

bool WriteStringToFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    PROTEUS_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  const std::size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  if (written != contents.size()) {
    PROTEUS_LOG(Error) << "short write to " << path;
    return false;
  }
  return true;
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  out->clear();
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace obs
}  // namespace proteus
