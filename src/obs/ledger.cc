#include "src/obs/ledger.h"

#include <utility>

#include "src/common/logging.h"
#include "src/obs/json.h"

namespace proteus {
namespace obs {

void AppendLedgerEventJson(std::string& out, const LedgerEvent& event) {
  out += "{\"id\":";
  out += std::to_string(event.id);
  out += ",\"parent\":";
  out += std::to_string(event.parent);
  out += ",\"ts\":";
  AppendJsonNumber(out, event.ts);
  out += ",\"dur\":";
  AppendJsonNumber(out, event.dur);
  out += ",\"kind\":";
  AppendJsonString(out, event.kind);
  out += ",\"component\":";
  AppendJsonString(out, event.component);
  if (!event.args.empty()) {
    out += ",\"args\":{";
    for (std::size_t i = 0; i < event.args.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      AppendJsonString(out, event.args[i].first);
      out += ':';
      const TraceValue& value = event.args[i].second;
      if (const auto* s = std::get_if<std::string>(&value)) {
        AppendJsonString(out, *s);
      } else if (const auto* n = std::get_if<std::int64_t>(&value)) {
        AppendJsonNumber(out, *n);
      } else {
        AppendJsonNumber(out, std::get<double>(value));
      }
    }
    out += '}';
  }
  out += '}';
}

void EventLedger::SetObserver(Observer observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(observer);
}

EventId EventLedger::Append(std::string kind, std::string component, double ts,
                            EventId parent, TraceArgs args) {
  LedgerEvent event;
  event.id = static_cast<EventId>(events_.size()) + 1;
  event.parent = parent;
  event.ts = ts;
  event.kind = std::move(kind);
  event.component = std::move(component);
  event.args = std::move(args);
  events_.push_back(std::move(event));
  if (observer_) {
    observer_(events_.back());
  }
  return events_.back().id;
}

EventId EventLedger::Record(std::string kind, std::string component, double ts,
                            TraceArgs args) {
  std::lock_guard<std::mutex> lock(mu_);
  const EventId parent = context_.empty() ? kNoEvent : context_.back();
  return Append(std::move(kind), std::move(component), ts, parent, std::move(args));
}

EventId EventLedger::RecordWithParent(std::string kind, std::string component, double ts,
                                      EventId parent, TraceArgs args) {
  std::lock_guard<std::mutex> lock(mu_);
  return Append(std::move(kind), std::move(component), ts, parent, std::move(args));
}

EventId EventLedger::Open(std::string kind, std::string component, double ts,
                          TraceArgs args) {
  std::lock_guard<std::mutex> lock(mu_);
  const EventId parent = context_.empty() ? kNoEvent : context_.back();
  const EventId id =
      Append(std::move(kind), std::move(component), ts, parent, std::move(args));
  context_.push_back(id);
  return id;
}

void EventLedger::Close(EventId id, double dur, TraceArgs args) {
  if (id == kNoEvent) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  PROTEUS_CHECK(!context_.empty() && context_.back() == id)
      << "EventLedger::Close out of order: closing " << id;
  context_.pop_back();
  LedgerEvent& event = events_[id - 1];
  event.dur = dur;
  if (!args.empty()) {
    for (auto& arg : args) {
      event.args.push_back(std::move(arg));
    }
  }
}

EventId EventLedger::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return context_.empty() ? kNoEvent : context_.back();
}

std::size_t EventLedger::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

LedgerEvent EventLedger::Get(EventId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == kNoEvent || id > events_.size()) {
    return LedgerEvent{};
  }
  return events_[id - 1];
}

std::vector<LedgerEvent> EventLedger::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<LedgerEvent> EventLedger::Chain(EventId anchor) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LedgerEvent> chain;
  EventId id = anchor;
  while (id != kNoEvent && id <= events_.size()) {
    const LedgerEvent& event = events_[id - 1];
    chain.push_back(event);
    if (event.parent >= id) {
      break;  // Corrupt parent link; never cycle.
    }
    id = event.parent;
  }
  return chain;
}

void EventLedger::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  context_.clear();
}

std::string EventLedger::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(events_.size() * 128);
  for (const LedgerEvent& event : events_) {
    AppendLedgerEventJson(out, event);
    out += '\n';
  }
  return out;
}

bool EventLedger::WriteJsonl(const std::string& path) const {
  return WriteStringToFile(path, ToJsonl());
}

}  // namespace obs
}  // namespace proteus
