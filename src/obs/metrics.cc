#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/common/logging.h"
#include "src/obs/json.h"

namespace proteus {
namespace obs {

namespace {

// Deterministic number formatting shared by the text/CSV/JSON
// exporters: integers print without a decimal point, everything else as
// %.9g (non-finite clamped by FormatJsonDouble so JSON stays valid).
std::string FormatValue(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  return FormatJsonDouble(v);
}

Labels SortedLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

std::string FormatLabels(const Labels& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) {
      out += ',';
    }
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  PROTEUS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound admits the value; the extra slot at
  // the end is the +inf overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

const MetricPoint* MetricsSnapshot::Find(const std::string& name, const Labels& labels) const {
  const Labels sorted = SortedLabels(labels);
  for (const MetricPoint& point : points) {
    if (point.name == name && point.labels == sorted) {
      return &point;
    }
  }
  return nullptr;
}

double MetricsSnapshot::Value(const std::string& name, const Labels& labels) const {
  const MetricPoint* point = Find(name, labels);
  return point != nullptr ? point->value : 0.0;
}

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& before,
                                      const MetricsSnapshot& after) {
  MetricsSnapshot out;
  for (const MetricPoint& point : after.points) {
    MetricPoint diffed = point;
    const MetricPoint* prev = before.Find(point.name, point.labels);
    if (prev != nullptr && point.kind != MetricKind::kGauge) {
      diffed.value -= prev->value;
      diffed.count -= prev->count;
      for (std::size_t i = 0; i < diffed.buckets.size() && i < prev->buckets.size(); ++i) {
        diffed.buckets[i] -= prev->buckets[i];
      }
    }
    out.points.push_back(std::move(diffed));
  }
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream out;
  for (const MetricPoint& point : points) {
    out << point.name;
    if (!point.labels.empty()) {
      out << '{' << FormatLabels(point.labels) << '}';
    }
    out << ' ' << MetricKindName(point.kind) << ' ' << FormatValue(point.value);
    if (point.kind == MetricKind::kHistogram) {
      out << " count=" << point.count << " buckets=";
      for (std::size_t i = 0; i < point.buckets.size(); ++i) {
        if (i > 0) {
          out << '|';
        }
        out << point.buckets[i];
      }
    }
    out << '\n';
  }
  return out.str();
}

std::string MetricsSnapshot::ToCsv() const {
  std::ostringstream out;
  out << "name,labels,kind,value,count\n";
  for (const MetricPoint& point : points) {
    // Label pairs use ';' inside the cell: the CSV layer has no quoting.
    std::string labels = FormatLabels(point.labels);
    std::replace(labels.begin(), labels.end(), ',', ';');
    out << point.name << ',' << labels << ',' << MetricKindName(point.kind) << ','
        << FormatValue(point.value) << ',' << point.count << '\n';
  }
  return out.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"metrics\":[";
  for (std::size_t p = 0; p < points.size(); ++p) {
    const MetricPoint& point = points[p];
    out += p == 0 ? "\n" : ",\n";
    out += "{\"name\":";
    AppendJsonString(out, point.name);
    out += ",\"labels\":{";
    for (std::size_t i = 0; i < point.labels.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      AppendJsonString(out, point.labels[i].first);
      out += ':';
      AppendJsonString(out, point.labels[i].second);
    }
    out += "},\"kind\":";
    AppendJsonString(out, MetricKindName(point.kind));
    out += ",\"value\":";
    out += FormatValue(point.value);
    if (point.kind == MetricKind::kHistogram) {
      out += ",\"count\":" + std::to_string(point.count);
      out += ",\"bounds\":[";
      for (std::size_t i = 0; i < point.bounds.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        AppendJsonNumber(out, point.bounds[i]);
      }
      out += "],\"buckets\":[";
      for (std::size_t i = 0; i < point.buckets.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        out += std::to_string(point.buckets[i]);
      }
      out += ']';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

bool MetricsSnapshot::WriteText(const std::string& path) const {
  return WriteStringToFile(path, ToText());
}

bool MetricsSnapshot::WriteCsv(const std::string& path) const {
  return WriteStringToFile(path, ToCsv());
}

bool MetricsSnapshot::WriteJson(const std::string& path) const {
  return WriteStringToFile(path, ToJson());
}

MetricsRegistry::Series& MetricsRegistry::GetSeries(const std::string& name,
                                                    const Labels& labels, MetricKind kind) {
  // Callers hold mu_.
  Series& series = series_[{name, SortedLabels(labels)}];
  if (series.counter == nullptr && series.gauge == nullptr && series.histogram == nullptr) {
    series.kind = kind;
  }
  PROTEUS_CHECK(series.kind == kind)
      << "metric " << name << " re-registered as " << MetricKindName(kind) << " (was "
      << MetricKindName(series.kind) << ")";
  return series;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& series = GetSeries(name, labels, MetricKind::kCounter);
  if (series.counter == nullptr) {
    series.counter = std::make_unique<Counter>();
  }
  return series.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& series = GetSeries(name, labels, MetricKind::kGauge);
  if (series.gauge == nullptr) {
    series.gauge = std::make_unique<Gauge>();
  }
  return series.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, std::vector<double> bounds,
                                         const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Series& series = GetSeries(name, labels, MetricKind::kHistogram);
  if (series.histogram == nullptr) {
    series.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return series.histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.points.reserve(series_.size());
  for (const auto& [key, series] : series_) {
    MetricPoint point;
    point.name = key.first;
    point.labels = key.second;
    point.kind = series.kind;
    switch (series.kind) {
      case MetricKind::kCounter:
        point.value = static_cast<double>(series.counter->value());
        break;
      case MetricKind::kGauge:
        point.value = series.gauge->value();
        break;
      case MetricKind::kHistogram:
        point.value = series.histogram->sum();
        point.count = series.histogram->count();
        point.bounds = series.histogram->bounds();
        point.buckets = series.histogram->bucket_counts();
        break;
    }
    snapshot.points.push_back(std::move(point));
  }
  return snapshot;  // std::map iteration order == sorted by (name, labels).
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Never destroyed.
  return *registry;
}

}  // namespace obs
}  // namespace proteus
