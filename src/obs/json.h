// Shared JSON plumbing for the observability layer.
//
// Every JSON artifact the repo emits (Chrome traces, the event ledger,
// metrics snapshots, flight-recorder dumps, proteus_analyze reports)
// routes through these helpers so escaping and number formatting are
// fixed in exactly one place and stay byte-deterministic across runs:
//
//   - AppendJsonString: RFC 8259 string escaping (quotes, backslashes,
//     the \b \f \n \r \t short escapes, \u00XX for remaining control
//     characters);
//   - FormatJsonDouble / AppendJsonNumber: "%.9g" formatting with a
//     non-finite guard (JSON has no NaN/Infinity literals; we clamp to
//     0 so an upstream numerical bug corrupts a value, not the file);
//   - a minimal recursive-descent parser (JsonValue / ParseJson) strong
//     enough to read back everything the writers above produce, used by
//     the proteus_analyze toolchain.
//
// Plus small file helpers shared by the exporters and the analyzer CLI.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace proteus {
namespace obs {

// Appends `s` as a quoted, escaped JSON string literal.
void AppendJsonString(std::string& out, std::string_view s);

// Deterministic double formatting: "%.9g", with NaN/Infinity clamped to
// 0 (invalid in JSON). Integral values small enough to round-trip print
// without an exponent or trailing ".0" (e.g. 1024, not 1.024e3).
std::string FormatJsonDouble(double v);
void AppendJsonNumber(std::string& out, double v);
void AppendJsonNumber(std::string& out, std::int64_t v);

// ---------------------------------------------------------------------
// Minimal JSON parser (reader side of the writers above).

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                            // kArray.
  std::vector<std::pair<std::string, JsonValue>> fields;   // kObject, source order.

  // Object field lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  // Typed field accessors with defaults (missing / wrong type => default).
  double NumberField(std::string_view key, double def = 0.0) const;
  std::int64_t IntField(std::string_view key, std::int64_t def = 0) const;
  std::string StringField(std::string_view key, std::string def = "") const;
};

// Parses one JSON document. Returns false (and sets *error with a byte
// offset) on malformed input; trailing whitespace is allowed.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error = nullptr);

// Parses JSONL: one document per non-empty line.
bool ParseJsonLines(std::string_view text, std::vector<JsonValue>* out,
                    std::string* error = nullptr);

// ---------------------------------------------------------------------
// File helpers.

// Returns false (and logs) on I/O failure.
bool WriteStringToFile(const std::string& path, const std::string& contents);
bool ReadFileToString(const std::string& path, std::string* out);

}  // namespace obs
}  // namespace proteus

#endif  // SRC_OBS_JSON_H_
