// Sim-clock event tracing with Chrome trace_event JSON export.
//
// The Tracer records spans (named intervals) and instant events on named
// tracks ("agileml", "proteus", "bidbrain", "chaos", ...). Timestamps
// are seconds on whatever clock the caller supplies: components that
// live in simulated time pass their virtual timestamps explicitly
// (SpanAt / InstantAt), so a trace of a same-seed run is bit-identical
// across executions; callers without a timebase use Instant(), which
// reads the tracer's clock — a bound sim clock (e.g. an EventQueue) or,
// by default, the wall clock since tracer construction.
//
// ToChromeJson() emits the Trace Event Format understood by Perfetto
// (ui.perfetto.dev) and chrome://tracing: spans as complete events
// (ph "X"), instants as ph "i", counter samples as ph "C" (rendered as
// time-series tracks), plus thread_name metadata naming each track.
// Event args are typed (string / int / double) and formatted
// deterministically through the shared src/obs/json.h helpers.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace proteus {
namespace obs {

using TraceValue = std::variant<std::string, std::int64_t, double>;
using TraceArgs = std::vector<std::pair<std::string, TraceValue>>;

struct TraceEvent {
  enum class Phase { kSpan, kInstant, kCounter };
  Phase phase = Phase::kInstant;
  std::string name;
  std::string track;
  double ts = 0.0;   // Seconds.
  double dur = 0.0;  // Seconds; spans only.
  TraceArgs args;
};

class Tracer {
 public:
  // Returns "now" in seconds. Null => wall clock (monotonic, zeroed at
  // tracer construction).
  using ClockFn = std::function<double()>;

  explicit Tracer(ClockFn clock = nullptr);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Rebinds the timebase, e.g. to an EventQueue: SetClock([&q] { return q.now(); }).
  void SetClock(ClockFn clock);

  // Current time on the bound clock, in seconds.
  double Now() const;

  // Explicit-timestamp recording (simulated-time components).
  void SpanAt(double ts, double dur, std::string name, std::string track,
              TraceArgs args = {});
  void InstantAt(double ts, std::string name, std::string track, TraceArgs args = {});

  // Clock-sampled instant (wall time unless a sim clock is bound).
  void Instant(std::string name, std::string track, TraceArgs args = {});

  // Counter sample (Chrome ph "C"): `name` becomes a time-series track
  // in Perfetto, stepping to `value` at ts. Gauges that matter over
  // time (backup lag, detector suspicions, cost total) go through this.
  void CounterAt(double ts, std::string name, std::string track, double value);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void Clear();

  // Chrome trace_event JSON ("traceEvents" array form). Deterministic:
  // identical event sequences render byte-identically.
  std::string ToChromeJson() const;
  // Returns false (and logs) on I/O failure.
  bool WriteJson(const std::string& path) const;

  // Sum of span durations, filtered by name (and optionally one arg
  // key/value); the chaos soak uses this for per-fault-class recovery
  // breakdowns.
  double SpanTotal(const std::string& name, const std::string& arg_key = "",
                   const std::string& arg_value = "") const;

 private:
  void Record(TraceEvent event);

  mutable std::mutex mu_;
  ClockFn clock_;
  double wall_epoch_ = 0.0;  // Used by the wall-clock fallback.
  std::vector<TraceEvent> events_;
  // Track name -> tid, in order of first use.
  std::map<std::string, int> track_ids_;
  std::vector<std::string> track_order_;
};

}  // namespace obs
}  // namespace proteus

#endif  // SRC_OBS_TRACE_H_
