#include "src/obs/trace.h"

#include <chrono>

#include "src/common/logging.h"
#include "src/obs/json.h"

namespace proteus {
namespace obs {

namespace {

double WallSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch()).count();
}

void AppendJsonValue(std::string& out, const TraceValue& value) {
  if (const auto* s = std::get_if<std::string>(&value)) {
    AppendJsonString(out, *s);
  } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
    AppendJsonNumber(out, *i);
  } else {
    AppendJsonNumber(out, std::get<double>(value));
  }
}

std::string FormatTraceValue(const TraceValue& value) {
  if (const auto* s = std::get_if<std::string>(&value)) {
    return *s;
  }
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    return std::to_string(*i);
  }
  return FormatJsonDouble(std::get<double>(value));
}

}  // namespace

Tracer::Tracer(ClockFn clock) : clock_(std::move(clock)) {
  if (!clock_) {
    wall_epoch_ = WallSeconds();
  }
}

void Tracer::SetClock(ClockFn clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(clock);
}

double Tracer::Now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_ ? clock_() : WallSeconds() - wall_epoch_;
}

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (track_ids_.emplace(event.track, static_cast<int>(track_order_.size())).second) {
    track_order_.push_back(event.track);
  }
  events_.push_back(std::move(event));
}

void Tracer::SpanAt(double ts, double dur, std::string name, std::string track,
                    TraceArgs args) {
  Record({TraceEvent::Phase::kSpan, std::move(name), std::move(track), ts, dur,
          std::move(args)});
}

void Tracer::InstantAt(double ts, std::string name, std::string track, TraceArgs args) {
  Record({TraceEvent::Phase::kInstant, std::move(name), std::move(track), ts, 0.0,
          std::move(args)});
}

void Tracer::Instant(std::string name, std::string track, TraceArgs args) {
  InstantAt(Now(), std::move(name), std::move(track), std::move(args));
}

void Tracer::CounterAt(double ts, std::string name, std::string track, double value) {
  Record({TraceEvent::Phase::kCounter, std::move(name), std::move(track), ts, 0.0,
          {{"value", value}}});
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  track_ids_.clear();
  track_order_.clear();
}

double Tracer::SpanTotal(const std::string& name, const std::string& arg_key,
                         const std::string& arg_value) const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const TraceEvent& event : events_) {
    if (event.phase != TraceEvent::Phase::kSpan || event.name != name) {
      continue;
    }
    if (!arg_key.empty()) {
      bool matched = false;
      for (const auto& [key, value] : event.args) {
        if (key == arg_key && FormatTraceValue(value) == arg_value) {
          matched = true;
          break;
        }
      }
      if (!matched) {
        continue;
      }
    }
    total += event.dur;
  }
  return total;
}

std::string Tracer::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(128 + events_.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '\n';
  };
  // Thread-name metadata, in first-use order, so every track renders
  // under a stable human-readable label.
  for (int tid = 0; tid < static_cast<int>(track_order_.size()); ++tid) {
    comma();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":";
    AppendJsonString(out, track_order_[static_cast<std::size_t>(tid)]);
    out += "}}";
  }
  for (const TraceEvent& event : events_) {
    comma();
    const int tid = track_ids_.at(event.track);
    out += "{\"ph\":\"";
    switch (event.phase) {
      case TraceEvent::Phase::kSpan:
        out += 'X';
        break;
      case TraceEvent::Phase::kInstant:
        out += 'i';
        break;
      case TraceEvent::Phase::kCounter:
        out += 'C';
        break;
    }
    out += "\",\"pid\":1,\"tid\":" + std::to_string(tid) + ",\"ts\":";
    out += FormatJsonDouble(event.ts * 1e6);  // trace_event ts is microseconds.
    if (event.phase == TraceEvent::Phase::kSpan) {
      out += ",\"dur\":" + FormatJsonDouble(event.dur * 1e6);
    } else if (event.phase == TraceEvent::Phase::kInstant) {
      out += ",\"s\":\"t\"";  // Thread-scoped instant.
    }
    out += ",\"name\":";
    AppendJsonString(out, event.name);
    if (!event.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t i = 0; i < event.args.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        AppendJsonString(out, event.args[i].first);
        out += ':';
        AppendJsonValue(out, event.args[i].second);
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::WriteJson(const std::string& path) const {
  return WriteStringToFile(path, ToChromeJson());
}

}  // namespace obs
}  // namespace proteus
