#include "src/obs/analyze/analyze.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "src/obs/json.h"

namespace proteus {
namespace obs {
namespace analyze {

namespace {

// Integer-friendly deterministic number formatting (matches the metrics
// exporters): integral values print without a decimal point.
std::string FormatNumber(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  return FormatJsonDouble(v);
}

void AppendField(std::string& out, const char* key, double value, bool first = false) {
  if (!first) {
    out += ',';
  }
  out += '"';
  out += key;
  out += "\":";
  out += FormatNumber(value);
}

// One executed training clock, as read from a ledger "clock" event.
struct Execution {
  int run = 0;
  std::int64_t index = 0;  // Training clock index this execution computed.
  double dur = 0.0;
  double t_compute = 0.0;
  double t_transport = 0.0;
  double stall = 0.0;
  double barrier = 0.0;
  std::int64_t workers = 0;
  std::int64_t reliable_nodes = 0;
  std::int64_t transient_nodes = 0;
  std::int64_t bottleneck_node = -1;
  std::string gate;  // "compute" or "transport".
  bool args_ok = false;
  bool wasted = false;  // Discarded by a later rollback.
  bool redo = false;    // Re-execution of a previously completed index.
};

struct RecoveryStep {
  int run = 0;
  double ts = 0.0;
  std::int64_t failed = 0;
  std::string depth;
  std::int64_t lost_clocks = 0;
  std::int64_t restored_clock = 0;
  std::int64_t durable_epoch = -1;
  std::int64_t used_durable = 0;
  std::int64_t corrupt_epochs_skipped = 0;
};

struct RunSegment {
  std::int64_t clocks_run = -1;  // From the run event's close args; -1 = unknown.
  std::int64_t clock_events = 0;
};

}  // namespace

AnalyzeResult AnalyzeRun(const std::string& ledger_jsonl, const std::string& trace_json,
                         const std::string& metrics_json, const AnalyzeOptions& options) {
  AnalyzeResult result;

  std::vector<JsonValue> events;
  std::string parse_error;
  if (!ParseJsonLines(ledger_jsonl, &events, &parse_error)) {
    result.error = "ledger: " + parse_error;
    result.ledger_gaps = 1;
    return result;
  }

  // ------------------------------------------------------------------
  // Pass over the event stream: segment by "run" regions, collect clock
  // executions, apply rollback invalidation, gather recovery steps.
  std::vector<Execution> executions;
  std::vector<RecoveryStep> recoveries;
  std::vector<RunSegment> runs;
  std::int64_t rollback_count = 0;
  std::int64_t rollback_lost_clocks = 0;
  std::map<std::string, std::int64_t> rollbacks_by_kind;
  std::int64_t violations = 0;
  double billed_cost = 0.0;  // Last proteus cost sample, when present.

  int current_run = -1;
  std::int64_t max_next_index = 0;  // One past the highest index executed this run.
  std::size_t run_first_execution = 0;

  std::uint64_t expected_id = 1;
  for (const JsonValue& event : events) {
    const std::uint64_t id = static_cast<std::uint64_t>(event.NumberField("id"));
    if (id != expected_id) {
      ++result.ledger_gaps;
      expected_id = id;
    }
    ++expected_id;

    const std::string kind = event.StringField("kind");
    const JsonValue* args = event.Find("args");

    if (kind == "run") {
      ++current_run;
      RunSegment segment;
      if (args != nullptr && args->Find("clocks_run") != nullptr) {
        segment.clocks_run = args->IntField("clocks_run");
      }
      runs.push_back(segment);
      max_next_index = 0;
      run_first_execution = executions.size();
      continue;
    }
    if (kind == "clock") {
      Execution exec;
      exec.run = current_run;
      exec.dur = event.NumberField("dur");
      if (args != nullptr) {
        exec.index = args->IntField("clock", -1);
        exec.t_compute = args->NumberField("t_compute");
        exec.t_transport = args->NumberField("t_transport");
        exec.stall = args->NumberField("stall");
        exec.barrier = args->NumberField("barrier");
        exec.workers = args->IntField("workers");
        exec.reliable_nodes = args->IntField("reliable_nodes");
        exec.transient_nodes = args->IntField("transient_nodes");
        exec.bottleneck_node = args->IntField("bottleneck_node", -1);
        exec.gate = args->StringField("gate");
        exec.args_ok = args->Find("t_compute") != nullptr &&
                       args->Find("t_transport") != nullptr &&
                       args->Find("stall") != nullptr &&
                       args->Find("barrier") != nullptr &&
                       args->Find("reliable_nodes") != nullptr &&
                       args->Find("transient_nodes") != nullptr && exec.index >= 0;
      }
      exec.redo = exec.index < max_next_index;
      max_next_index = std::max(max_next_index, exec.index + 1);
      if (!runs.empty()) {
        ++runs.back().clock_events;
      }
      executions.push_back(std::move(exec));
      continue;
    }
    if (kind == "rollback") {
      ++rollback_count;
      if (args != nullptr) {
        const std::int64_t to_clock = args->IntField("to_clock");
        const std::int64_t lost = args->IntField("lost_clocks");
        rollback_lost_clocks += lost;
        ++rollbacks_by_kind[args->StringField("kind", "unknown")];
        if (lost > 0) {
          // Work at or past the rollback point is discarded: attribute
          // those executions' wall-clock (and transient dollars) to the
          // rollback / wasted-evicted buckets.
          for (std::size_t i = run_first_execution; i < executions.size(); ++i) {
            if (executions[i].index >= to_clock) {
              executions[i].wasted = true;
            }
          }
        }
      }
      continue;
    }
    if (kind == "recovery.step") {
      RecoveryStep step;
      step.run = current_run;
      step.ts = event.NumberField("ts");
      if (args != nullptr) {
        step.failed = args->IntField("failed");
        step.depth = args->StringField("depth", "unknown");
        step.lost_clocks = args->IntField("lost_clocks");
        step.restored_clock = args->IntField("restored_clock");
        step.durable_epoch = args->IntField("durable_epoch", -1);
        step.used_durable = args->IntField("used_durable");
        step.corrupt_epochs_skipped = args->IntField("corrupt_epochs_skipped");
      }
      recoveries.push_back(std::move(step));
      continue;
    }
    if (kind == "audit.violation") {
      ++violations;
      continue;
    }
    if (kind == "cost.sample" && args != nullptr) {
      billed_cost = args->NumberField("dollars", billed_cost);
      continue;
    }
  }

  // ------------------------------------------------------------------
  // Wall-clock attribution: every execution's full duration lands in
  // exactly one of {compute, transport, rollback, recovery, idle}.
  double wall_total = 0.0;
  double wall_compute = 0.0;
  double wall_transport = 0.0;
  double wall_rollback = 0.0;
  double wall_recovery = 0.0;
  double wall_idle = 0.0;
  std::int64_t productive = 0;
  std::int64_t redone = 0;
  std::int64_t wasted = 0;

  // Cost attribution, from per-clock tier populations.
  double cost_total = 0.0;
  double cost_transient = 0.0;
  double cost_reliable = 0.0;
  double cost_recovery = 0.0;
  double cost_wasted = 0.0;

  struct NodeStats {
    std::int64_t gated_clocks = 0;
    double gated_seconds = 0.0;
    std::int64_t compute_gated = 0;
    std::int64_t transport_gated = 0;
  };
  std::map<std::int64_t, NodeStats> stragglers;

  for (const Execution& exec : executions) {
    wall_total += exec.dur;
    if (!exec.args_ok) {
      ++result.unattributed_clocks;
    }
    const double dollars_r =
        static_cast<double>(exec.reliable_nodes) * options.rate_reliable_per_hour *
        exec.dur / 3600.0;
    const double dollars_t =
        static_cast<double>(exec.transient_nodes) * options.rate_transient_per_hour *
        exec.dur / 3600.0;
    cost_total += dollars_r + dollars_t;
    cost_reliable += dollars_r;
    if (exec.wasted) {
      ++wasted;
      wall_rollback += exec.dur;
      cost_wasted += dollars_t;
      continue;
    }
    if (exec.redo) {
      ++redone;
      wall_recovery += exec.dur;
      cost_recovery += dollars_t;
      continue;
    }
    ++productive;
    wall_compute += exec.t_compute;
    wall_transport += exec.t_transport;
    wall_recovery += exec.stall;
    const double idle = exec.dur - exec.t_compute - exec.t_transport - exec.stall;
    wall_idle += idle;
    if (exec.args_ok &&
        (idle < -1e-9 || std::abs(idle - exec.barrier) > 1e-6 * std::max(1.0, exec.dur))) {
      // The pieces do not reassemble into the recorded duration: some
      // of this clock's wall time has no cause in the ledger.
      ++result.unattributed_clocks;
    }
    const double stall_share = exec.dur > 0.0 ? exec.stall / exec.dur : 0.0;
    cost_recovery += dollars_t * stall_share;
    cost_transient += dollars_t * (1.0 - stall_share);
    if (exec.bottleneck_node >= 0) {
      NodeStats& stats = stragglers[exec.bottleneck_node];
      ++stats.gated_clocks;
      stats.gated_seconds += exec.t_compute + exec.t_transport;
      if (exec.gate == "compute") {
        ++stats.compute_gated;
      } else {
        ++stats.transport_gated;
      }
    }
  }

  // Normalize synthetic dollars to the billed total when the run has a
  // real market (proteus cost samples): the split then reads as a
  // decomposition of the actual bill.
  double cost_scale = 1.0;
  if (billed_cost > 0.0 && cost_total > 0.0) {
    cost_scale = billed_cost / cost_total;
    cost_total *= cost_scale;
    cost_transient *= cost_scale;
    cost_reliable *= cost_scale;
    cost_recovery *= cost_scale;
    cost_wasted *= cost_scale;
  }

  // Run-summary cross-check: every RunClock the harness executed must
  // have a ledger clock event.
  for (const RunSegment& segment : runs) {
    if (segment.clocks_run >= 0 && segment.clocks_run != segment.clock_events) {
      ++result.ledger_gaps;
    }
  }

  // ------------------------------------------------------------------
  // Optional trace / metrics cross-sections.
  double trace_clock_seconds = -1.0;
  double trace_recovery_seconds = -1.0;
  std::int64_t trace_events = -1;
  if (!trace_json.empty()) {
    JsonValue trace;
    if (!ParseJson(trace_json, &trace, &parse_error)) {
      result.error = "trace: " + parse_error;
      return result;
    }
    trace_clock_seconds = 0.0;
    trace_recovery_seconds = 0.0;
    trace_events = 0;
    if (const JsonValue* list = trace.Find("traceEvents")) {
      trace_events = static_cast<std::int64_t>(list->items.size());
      for (const JsonValue& event : list->items) {
        if (event.StringField("ph") != "X") {
          continue;
        }
        const double dur_s = event.NumberField("dur") / 1e6;
        const std::string name = event.StringField("name");
        if (name == "clock") {
          trace_clock_seconds += dur_s;
        } else if (name == "recovery" || name == "recovery.stall") {
          trace_recovery_seconds += dur_s;
        }
      }
    }
  }

  std::map<std::string, double> metric_totals;
  if (!metrics_json.empty()) {
    JsonValue metrics;
    if (!ParseJson(metrics_json, &metrics, &parse_error)) {
      result.error = "metrics: " + parse_error;
      return result;
    }
    static const char* const kInteresting[] = {
        "rpc.retransmits",       "rpc.dup_delivered_suppressed",
        "rpc.messages.dropped",  "chaos.audit.violations",
        "agileml.clocks.lost",   "proteus.cost.dollars",
    };
    if (const JsonValue* list = metrics.Find("metrics")) {
      for (const JsonValue& point : list->items) {
        const std::string name = point.StringField("name");
        for (const char* wanted : kInteresting) {
          if (name == wanted) {
            metric_totals[name] += point.NumberField("value");
          }
        }
      }
    }
  }

  // ------------------------------------------------------------------
  // Render the report.
  std::string& out = result.report_json;
  out += "{\"schema\":\"proteus.report.v1\"";
  AppendField(out, "runs", static_cast<double>(runs.empty() ? (executions.empty() ? 0 : 1)
                                                            : runs.size()));

  out += ",\"clocks\":{";
  AppendField(out, "executed", static_cast<double>(executions.size()), true);
  AppendField(out, "productive", static_cast<double>(productive));
  AppendField(out, "redone", static_cast<double>(redone));
  AppendField(out, "wasted", static_cast<double>(wasted));
  AppendField(out, "lost_to_rollbacks", static_cast<double>(rollback_lost_clocks));
  out += '}';

  out += ",\"wall_time\":{";
  AppendField(out, "total", wall_total, true);
  AppendField(out, "compute", wall_compute);
  AppendField(out, "transport", wall_transport);
  AppendField(out, "rollback", wall_rollback);
  AppendField(out, "recovery", wall_recovery);
  AppendField(out, "idle", wall_idle);
  out += '}';
  out += ",\"wall_time_shares\":{";
  const double wall_div = wall_total > 0.0 ? wall_total : 1.0;
  AppendField(out, "compute", wall_compute / wall_div, true);
  AppendField(out, "transport", wall_transport / wall_div);
  AppendField(out, "rollback", wall_rollback / wall_div);
  AppendField(out, "recovery", wall_recovery / wall_div);
  AppendField(out, "idle", wall_idle / wall_div);
  out += '}';

  out += ",\"cost\":{";
  AppendField(out, "total", cost_total, true);
  AppendField(out, "transient", cost_transient);
  AppendField(out, "reliable", cost_reliable);
  AppendField(out, "recovery", cost_recovery);
  AppendField(out, "wasted_evicted", cost_wasted);
  AppendField(out, "rate_reliable_per_hour", options.rate_reliable_per_hour);
  AppendField(out, "rate_transient_per_hour", options.rate_transient_per_hour);
  AppendField(out, "billed_total", billed_cost);
  AppendField(out, "scale", cost_scale);
  out += '}';
  out += ",\"cost_shares\":{";
  const double cost_div = cost_total > 0.0 ? cost_total : 1.0;
  AppendField(out, "transient", cost_transient / cost_div, true);
  AppendField(out, "reliable", cost_reliable / cost_div);
  AppendField(out, "recovery", cost_recovery / cost_div);
  AppendField(out, "wasted_evicted", cost_wasted / cost_div);
  out += '}';

  out += ",\"stragglers\":[";
  bool first = true;
  for (const auto& [node, stats] : stragglers) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"node\":" + std::to_string(node);
    AppendField(out, "gated_clocks", static_cast<double>(stats.gated_clocks));
    AppendField(out, "gated_seconds", stats.gated_seconds);
    AppendField(out, "compute_gated", static_cast<double>(stats.compute_gated));
    AppendField(out, "transport_gated", static_cast<double>(stats.transport_gated));
    out += '}';
  }
  out += "]";

  // Histogram: how many nodes gated <= 1, 2, 4, ... clocks.
  out += ",\"straggler_histogram\":[";
  if (!stragglers.empty()) {
    std::int64_t max_gated = 0;
    for (const auto& [node, stats] : stragglers) {
      max_gated = std::max(max_gated, stats.gated_clocks);
    }
    first = true;
    for (std::int64_t bound = 1;; bound *= 2) {
      std::int64_t nodes = 0;
      for (const auto& [node, stats] : stragglers) {
        if (stats.gated_clocks <= bound) {
          ++nodes;
        }
      }
      if (!first) {
        out += ',';
      }
      first = false;
      out += "{\"gated_clocks_le\":" + std::to_string(bound) +
             ",\"nodes\":" + std::to_string(nodes) + '}';
      if (bound >= max_gated) {
        break;
      }
    }
  }
  out += "]";

  // The slowest executions, whatever their fate.
  out += ",\"critical_path\":[";
  {
    std::vector<std::size_t> order(executions.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return executions[a].dur > executions[b].dur;
    });
    const std::size_t top = std::min<std::size_t>(
        order.size(), static_cast<std::size_t>(std::max(options.critical_path_top, 0)));
    for (std::size_t i = 0; i < top; ++i) {
      const Execution& exec = executions[order[i]];
      out += i == 0 ? "\n" : ",\n";
      out += "{\"run\":" + std::to_string(exec.run);
      AppendField(out, "clock", static_cast<double>(exec.index));
      AppendField(out, "duration", exec.dur);
      AppendField(out, "node", static_cast<double>(exec.bottleneck_node));
      out += ",\"gate\":";
      AppendJsonString(out, exec.gate);
      out += ",\"status\":";
      AppendJsonString(out, exec.wasted ? "wasted" : (exec.redo ? "redo" : "productive"));
      out += '}';
    }
  }
  out += "]";

  out += ",\"recoveries\":[";
  for (std::size_t i = 0; i < recoveries.size(); ++i) {
    const RecoveryStep& step = recoveries[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"run\":" + std::to_string(step.run);
    AppendField(out, "ts", step.ts);
    AppendField(out, "failed_nodes", static_cast<double>(step.failed));
    out += ",\"depth\":";
    AppendJsonString(out, step.depth);
    AppendField(out, "lost_clocks", static_cast<double>(step.lost_clocks));
    AppendField(out, "restored_clock", static_cast<double>(step.restored_clock));
    AppendField(out, "durable_epoch", static_cast<double>(step.durable_epoch));
    AppendField(out, "used_durable", static_cast<double>(step.used_durable));
    AppendField(out, "corrupt_epochs_skipped",
                static_cast<double>(step.corrupt_epochs_skipped));
    out += '}';
  }
  out += "]";

  out += ",\"rollbacks\":{";
  AppendField(out, "count", static_cast<double>(rollback_count), true);
  AppendField(out, "lost_clocks", static_cast<double>(rollback_lost_clocks));
  for (const auto& [kind, count] : rollbacks_by_kind) {
    out += ",";
    AppendJsonString(out, kind);
    out += ':' + std::to_string(count);
  }
  out += '}';

  AppendField(out, "audit_violations", static_cast<double>(violations));

  if (trace_events >= 0) {
    out += ",\"trace\":{";
    AppendField(out, "events", static_cast<double>(trace_events), true);
    AppendField(out, "clock_span_seconds", trace_clock_seconds);
    AppendField(out, "recovery_span_seconds", trace_recovery_seconds);
    out += '}';
  }
  if (!metric_totals.empty()) {
    out += ",\"metrics\":{";
    first = true;
    for (const auto& [name, value] : metric_totals) {
      if (!first) {
        out += ',';
      }
      first = false;
      AppendJsonString(out, name);
      out += ':';
      out += FormatNumber(value);
    }
    out += '}';
  }

  out += ",\"checks\":{";
  AppendField(out, "events", static_cast<double>(events.size()), true);
  AppendField(out, "clock_events", static_cast<double>(executions.size()));
  AppendField(out, "ledger_gaps", static_cast<double>(result.ledger_gaps));
  AppendField(out, "unattributed_clocks", static_cast<double>(result.unattributed_clocks));
  out += "}}\n";
  return result;
}

}  // namespace analyze
}  // namespace obs
}  // namespace proteus
