// proteus_analyze: turns a run's observability dumps (event ledger +
// Chrome trace + metrics snapshot) into the accounting the paper argues
// with — where every second and every dollar of a training run went.
//
// Inputs are the artifacts ObsSession writes (--ledger_out= JSONL,
// --trace_out= Chrome JSON, --metrics_out= JSON); only the ledger is
// required. The analyzer replays the ledger's causal event stream and
// produces a deterministic REPORT json:
//
//   - per-clock critical-path attribution: for every executed training
//     clock, which node gated it and whether the time was compute,
//     transport, rollback (work a later rollback discarded), recovery
//     (re-execution of rolled-back clocks + recovery stalls), or idle
//     (barrier overhead). Every second of virtual wall-clock lands in
//     exactly one bucket — an unattributable clock is reported and
//     fails `--check` (that is the "ledger gap" CI gate);
//   - straggler attribution: per-node counts/seconds of clocks gated,
//     plus a histogram;
//   - cost of reliability (paper Fig 8/9): dollars split across
//     {transient, reliable, recovery, wasted-evicted} from per-clock
//     tier populations and configurable hourly rates, normalized to the
//     billed total when the ledger carries proteus cost samples;
//   - recovery post-mortems: ladder depth, lost clocks, restore epochs;
//   - rollback and audit-violation summaries.
//
// Same-seed ledgers produce byte-identical reports (the golden test
// also holds the report fixed across worker thread counts: every value
// derives from the deterministic virtual-time model, not from
// scheduling).
#ifndef SRC_OBS_ANALYZE_ANALYZE_H_
#define SRC_OBS_ANALYZE_ANALYZE_H_

#include <string>

namespace proteus {
namespace obs {
namespace analyze {

struct AnalyzeOptions {
  // Hourly rates used to turn per-clock tier populations into dollars
  // when the run has no market (chaos runs). Defaults approximate the
  // paper's c4.xlarge on-demand price and a deep-discount spot price.
  double rate_reliable_per_hour = 0.199;
  double rate_transient_per_hour = 0.035;
  // How many slowest clocks the critical_path section lists.
  int critical_path_top = 10;
};

struct AnalyzeResult {
  std::string report_json;  // Deterministic REPORT_*.json payload.
  // Clocks whose recorded duration could not be fully decomposed into
  // {compute, transport, rollback, recovery, idle} (missing args or a
  // component-sum mismatch) — the "unattributed clock stall" gate.
  int unattributed_clocks = 0;
  // Structural holes: non-contiguous event ids, clock-count mismatch
  // against the run summary, or unparseable input.
  int ledger_gaps = 0;
  std::string error;  // Non-empty when inputs failed to parse.

  bool ok() const { return error.empty() && unattributed_clocks == 0 && ledger_gaps == 0; }
};

// `ledger_jsonl` is required; `trace_json` / `metrics_json` may be
// empty strings (their report sections are then omitted).
AnalyzeResult AnalyzeRun(const std::string& ledger_jsonl, const std::string& trace_json,
                         const std::string& metrics_json,
                         const AnalyzeOptions& options = {});

}  // namespace analyze
}  // namespace obs
}  // namespace proteus

#endif  // SRC_OBS_ANALYZE_ANALYZE_H_
