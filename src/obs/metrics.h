// Unified metrics registry: labeled counters, gauges, and fixed-bucket
// histograms with a lock-free fast path.
//
// Registration (GetCounter / GetGauge / GetHistogram) takes a mutex and
// returns a stable handle; callers cache the handle and every subsequent
// Add / Set / Observe is a relaxed atomic operation, safe from any
// thread. Snapshots are taken concurrently with updates (values are read
// atomically; a snapshot is a consistent-enough point-in-time view for
// reporting, not a linearizable cut).
//
// Naming scheme (see DESIGN.md "Observability"): dot-separated
// `<component>.<subject>[.<unit>]`, e.g. `agileml.push.bytes`,
// `proteus.cost.dollars`, `rpc.messages.dropped`. Labels carry bounded
// cardinality dimensions (stage, fault class, message type, channel,
// allocation id).
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace proteus {
namespace obs {

// Sorted key=value pairs identifying one series within a metric family.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Renders {a=1, b=2} as "a=1,b=2" (keys sorted). Empty labels -> "".
std::string FormatLabels(const Labels& labels);

class Counter {
 public:
  void Add(std::uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed upper-bound buckets (plus an implicit +inf overflow bucket).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // bucket_counts()[i] counts observations <= bounds()[i]; the last entry
  // (index bounds().size()) is the +inf overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1.
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

// One series in a snapshot.
struct MetricPoint {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  // Counter value (as double), gauge value, or histogram sum.
  // Histogram-only fields.
  std::uint64_t count = 0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
};

struct MetricsSnapshot {
  std::vector<MetricPoint> points;  // Sorted by (name, labels).

  const MetricPoint* Find(const std::string& name, const Labels& labels = {}) const;
  // Convenience: value of a counter/gauge series, or 0 if absent.
  double Value(const std::string& name, const Labels& labels = {}) const;

  // Counter/histogram series subtract (series only in `after` pass
  // through); gauges take the `after` value.
  static MetricsSnapshot Diff(const MetricsSnapshot& before, const MetricsSnapshot& after);

  // One line per series: `name{a=1,b=2} kind value [count]`.
  std::string ToText() const;
  // CSV with header `name,labels,kind,value,count`.
  std::string ToCsv() const;
  // {"metrics":[{"name":..,"labels":{..},"kind":..,"value":..},...]} in
  // the same deterministic (name, labels) order as text/CSV; histograms
  // carry "count"/"bounds"/"buckets". proteus_analyze reads this form.
  std::string ToJson() const;
  // Returns false (and logs) on I/O failure.
  bool WriteText(const std::string& path) const;
  bool WriteCsv(const std::string& path) const;
  bool WriteJson(const std::string& path) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Handles are stable for the registry's lifetime; repeated calls with
  // the same (name, labels) return the same handle. A name registered as
  // one kind must not be re-registered as another (checked).
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          const Labels& labels = {});

  MetricsSnapshot Snapshot() const;

  // Drops every registered series. Outstanding handles become dangling;
  // only call between runs (benches, tests), never mid-measurement.
  void Reset();

  std::size_t series_count() const;

  // Process-wide default registry. Components fall back to it when no
  // registry is injected explicitly.
  static MetricsRegistry& Default();

 private:
  struct Series {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  using SeriesKey = std::pair<std::string, Labels>;

  Series& GetSeries(const std::string& name, const Labels& labels, MetricKind kind);

  mutable std::mutex mu_;
  std::map<SeriesKey, Series> series_;
};

}  // namespace obs
}  // namespace proteus

#endif  // SRC_OBS_METRICS_H_
