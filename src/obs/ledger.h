// EventLedger: a deterministic, causally-linked structured event log.
//
// Where the Tracer answers "what happened when", the ledger answers
// "what happened *because of what*": every event carries the id of the
// event that caused it. Causality is captured with an ambient context
// stack — a component that starts a causal region (a training clock, a
// fault injection, a recovery-ladder step) Opens an event, everything
// recorded while it is open becomes its child, and Close fills in the
// duration and summary args once the region's outcome is known. Regions
// nest (fault -> rollback -> checkpoint restore), and events recorded
// outside any region are roots (parent 0).
//
// All timestamps are virtual (simulated) seconds supplied by the
// caller, and ids are a 1-based append sequence, so a same-seed run
// produces a byte-identical ledger — the property proteus_analyze's
// golden test and CI determinism gate rely on. Export is JSONL (one
// event per line) through the shared src/obs/json.h helpers.
//
// Thread safety: all mutation is serialized on an internal mutex. The
// instrumented control paths (RunClock, chaos harness, recovery ladder)
// are single-threaded per run, so the lock is uncontended; the observer
// hook (used by the FlightRecorder) is invoked under the lock and must
// not call back into the ledger.
#ifndef SRC_OBS_LEDGER_H_
#define SRC_OBS_LEDGER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace proteus {
namespace obs {

// 0 means "no event" (roots have parent 0).
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

struct LedgerEvent {
  EventId id = kNoEvent;
  EventId parent = kNoEvent;
  double ts = 0.0;   // Virtual seconds.
  double dur = 0.0;  // Virtual seconds; non-zero for closed regions.
  std::string kind;       // "clock", "rollback", "rpc.retransmit", ...
  std::string component;  // "agileml", "rpc", "chaos", "recovery", "proteus".
  TraceArgs args;
};

class EventLedger {
 public:
  // Called (under the ledger lock) for every event as it is first
  // recorded; Close does not re-notify. Must not re-enter the ledger.
  using Observer = std::function<void(const LedgerEvent&)>;

  EventLedger() = default;
  EventLedger(const EventLedger&) = delete;
  EventLedger& operator=(const EventLedger&) = delete;

  void SetObserver(Observer observer);

  // Records a leaf event parented to the innermost open region (or as a
  // root if none is open).
  EventId Record(std::string kind, std::string component, double ts,
                 TraceArgs args = {});
  // Records a leaf event with an explicit causal parent — used where
  // causality flows through state rather than the call stack (e.g. a
  // retransmit parented to the original send carried in the ARQ window).
  EventId RecordWithParent(std::string kind, std::string component, double ts,
                           EventId parent, TraceArgs args = {});

  // Opens a causal region: records the event and pushes it on the
  // context stack so subsequent events become its children. Close pops
  // it (regions must close innermost-first) and fills in duration and
  // args. Closing with id 0 is a no-op, so instrumentation can be
  // written unconditionally.
  EventId Open(std::string kind, std::string component, double ts,
               TraceArgs args = {});
  void Close(EventId id, double dur, TraceArgs args = {});

  // Innermost open region, or kNoEvent.
  EventId current() const;

  std::size_t size() const;
  // Copy of one event (default-constructed if out of range) / of the
  // whole log. Copies, because the backing vector reallocates.
  LedgerEvent Get(EventId id) const;
  std::vector<LedgerEvent> Events() const;
  // The causal chain anchor -> ... -> root (anchor first).
  std::vector<LedgerEvent> Chain(EventId anchor) const;

  void Clear();

  // JSONL export: {"id":..,"parent":..,"ts":..,"dur":..,"kind":..,
  // "component":..,"args":{..}} per line, byte-deterministic.
  std::string ToJsonl() const;
  bool WriteJsonl(const std::string& path) const;

 private:
  EventId Append(std::string kind, std::string component, double ts, EventId parent,
                 TraceArgs args);

  mutable std::mutex mu_;
  std::vector<LedgerEvent> events_;
  std::vector<EventId> context_;
  Observer observer_;
};

// Renders one event as a single-line JSON object (no trailing newline);
// shared by ToJsonl and the FlightRecorder dump format.
void AppendLedgerEventJson(std::string& out, const LedgerEvent& event);

}  // namespace obs
}  // namespace proteus

#endif  // SRC_OBS_LEDGER_H_
