#include "src/obs/flight_recorder.h"

#include <utility>

#include "src/common/logging.h"
#include "src/obs/json.h"

namespace proteus {
namespace obs {

namespace {

// The fatal hook is a bare function pointer, so the recorder registers
// itself through this trampoline.
void FatalHookTrampoline(const char* message, void* arg) {
  auto* recorder = static_cast<FlightRecorder*>(arg);
  recorder->Dump(message != nullptr ? message : "fatal");
}

}  // namespace

FlightRecorder::FlightRecorder(EventLedger* ledger, std::size_t ring_capacity)
    : ledger_(ledger), capacity_(ring_capacity == 0 ? 1 : ring_capacity) {
  ledger_->SetObserver([this](const LedgerEvent& event) { OnEvent(event); });
}

FlightRecorder::~FlightRecorder() {
  ledger_->SetObserver(nullptr);
  SetFatalHook(nullptr, nullptr);
}

void FlightRecorder::SetDumpPath(std::string path) { dump_path_ = std::move(path); }

void FlightRecorder::InstallFatalHook() { SetFatalHook(&FatalHookTrampoline, this); }

void FlightRecorder::OnEvent(const LedgerEvent& event) {
  last_event_.store(event.id, std::memory_order_relaxed);
  Ring* ring = nullptr;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    auto it = rings_.find(event.component);
    if (it == rings_.end()) {
      it = rings_.emplace(event.component, std::make_unique<Ring>(capacity_)).first;
    }
    ring = it->second.get();
  }
  const std::uint64_t slot = ring->next.fetch_add(1, std::memory_order_relaxed);
  ring->slots[slot % capacity_].store(event.id, std::memory_order_release);
}

std::vector<EventId> FlightRecorder::RingContents(const Ring& ring) const {
  const std::uint64_t written = ring.next.load(std::memory_order_acquire);
  const std::uint64_t count = written < capacity_ ? written : capacity_;
  std::vector<EventId> ids;
  ids.reserve(count);
  for (std::uint64_t i = written - count; i < written; ++i) {
    const EventId id = ring.slots[i % capacity_].load(std::memory_order_acquire);
    if (id != kNoEvent) {
      ids.push_back(id);
    }
  }
  return ids;
}

std::string FlightRecorder::DumpToString(const std::string& reason,
                                         EventId anchor) const {
  if (anchor == kNoEvent) {
    anchor = last_event_.load(std::memory_order_relaxed);
  }
  std::string out;
  out += "{\"reason\":";
  AppendJsonString(out, reason);
  out += ",\"anchor\":";
  out += std::to_string(anchor);
  out += ",\n\"chain\":[";
  const std::vector<LedgerEvent> chain = ledger_->Chain(anchor);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    AppendLedgerEventJson(out, chain[i]);
  }
  out += "\n],\n\"components\":{";
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    bool first_component = true;
    for (const auto& [component, ring] : rings_) {
      if (!first_component) {
        out += ',';
      }
      first_component = false;
      out += '\n';
      AppendJsonString(out, component);
      out += ":[";
      const std::vector<EventId> ids = RingContents(*ring);
      for (std::size_t i = 0; i < ids.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        AppendLedgerEventJson(out, ledger_->Get(ids[i]));
      }
      out += "\n]";
    }
  }
  out += "\n}}\n";
  return out;
}

bool FlightRecorder::DumpToFile(const std::string& path, const std::string& reason,
                                EventId anchor) const {
  return WriteStringToFile(path, DumpToString(reason, anchor));
}

bool FlightRecorder::Dump(const std::string& reason, EventId anchor) const {
  const bool ok = DumpToFile(dump_path_, reason, anchor);
  if (ok) {
    PROTEUS_LOG(Warning) << "flight recorder dumped to " << dump_path_ << " (" << reason
                         << ")";
  }
  return ok;
}

}  // namespace obs
}  // namespace proteus
