#include "src/sim/event_queue.h"

#include <algorithm>

#include "src/common/logging.h"

namespace proteus {

EventId EventQueue::ScheduleAt(SimTime when, std::function<void()> fn) {
  PROTEUS_CHECK_GE(when, now_);
  const EventId id = next_id_++;
  heap_.push(Event{when, next_seq_++, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

EventId EventQueue::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::Cancel(EventId id) {
  // Only events that are still pending can be cancelled; the heap entry
  // becomes a tombstone skipped at pop time.
  return pending_.erase(id) > 0;
}

void EventQueue::RunUntil(SimTime horizon) {
  while (!heap_.empty() && heap_.top().when <= horizon) {
    Step();
  }
  now_ = std::max(now_, horizon);
}

void EventQueue::RunAll() {
  while (Step()) {
  }
}

bool EventQueue::Step() {
  while (!heap_.empty()) {
    Event event = heap_.top();
    heap_.pop();
    if (pending_.erase(event.id) == 0) {
      continue;  // Cancelled: tombstone.
    }
    now_ = std::max(now_, event.when);
    event.fn();
    return true;
  }
  return false;
}

}  // namespace proteus
