// Discrete-event simulation core: a clock plus an ordered event queue.
// Used by the market simulator and the long-horizon job simulations.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <set>
#include <vector>

#include "src/common/types.h"

namespace proteus {

// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventQueue() = default;

  SimTime now() const { return now_; }

  // Schedules fn to run at absolute time `when` (>= now). Events scheduled
  // for the same instant run in scheduling order (FIFO tie-break).
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  // Schedules fn to run `delay` seconds from now.
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn);

  // Cancels a pending event. Returns false (and has no effect) if the
  // event already ran or was already cancelled.
  bool Cancel(EventId id);

  // Runs events until the queue is empty or the next event is after
  // `horizon`. The clock advances to min(horizon, last event time).
  void RunUntil(SimTime horizon);

  // Runs all events to exhaustion.
  void RunAll();

  // Runs a single event if one is pending; returns false when empty.
  bool Step();

  bool empty() const { return pending_.empty(); }
  std::size_t pending() const { return pending_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  // Ids of events that are scheduled and neither run nor cancelled.
  // Cancelled events stay in the heap as tombstones and are skipped on
  // pop (removal from a binary heap is not worth the complexity here).
  std::set<EventId> pending_;
};

}  // namespace proteus

#endif  // SRC_SIM_EVENT_QUEUE_H_
